"""Discrete-event simulation kernel with VHDL-style delta cycles.

The kernel knows nothing about the IR; it schedules *processes*
(Python generators) that yield :class:`WaitCondition`,
:class:`WaitDelay` or :class:`Join` requests, and it owns the *signal*
store: signal assignments are deferred and take effect between process
activations (a delta cycle), so concurrently executing behaviors see a
consistent snapshot — the property the refined handshake protocols rely
on.

Scheduling loop:

1. run every ready process until it suspends or finishes;
2. apply pending signal updates; signals that changed wake the
   processes indexed under them in the *sensitivity index* (a *delta
   cycle* — time does not advance);
3. when no delta activity remains, advance time to the earliest timed
   wait;
4. when neither delta nor timed work remains, the simulation is
   *quiescent* and :meth:`Kernel.run` returns.  Refined designs contain
   endless server behaviors (memories, arbiters, bus interfaces), so
   quiescence with the application processes finished is the normal
   termination; the caller decides which processes were required to
   finish (pass them as ``required`` to get a structured
   :class:`DeadlockError` instead of a silent incomplete run).

The sensitivity index (``signal name -> processes waiting on it``) is
maintained incrementally as processes suspend and wake, so a delta
cycle touches only the waiters of the signals that actually changed —
the kernel never rescans the whole suspended set.  Wake order is the
order the processes suspended in (each waiter carries a monotonically
increasing sequence number), which keeps scheduling deterministic and
identical to the historical scan-based behavior.

Observability and robustness machinery (all opt-in, zero-cost when
unused):

* :class:`repro.sim.metrics.SimMetrics` — inline counters (process
  activations, delta cycles, signal updates, bus transactions, ...)
  attached via ``Kernel(metrics=...)``;
* :class:`repro.sim.metrics.Tracer` — a structured recorder of the
  scheduler event stream, attached via ``Kernel(tracer=...)``;
* :class:`KernelLimits` — configurable budgets (total activations,
  delta cycles per timestep, wall-clock seconds); a breach raises
  :class:`SimulationLimitExceeded` naming the limit that tripped;
* a ring buffer of the last scheduler events, attached to limit and
  deadlock errors so a wedged protocol can be diagnosed post mortem;
* a narrow fault-injection interface: an *injector* (see
  :mod:`repro.sim.faults`) may intercept every signal write
  (drop/delay/corrupt) and every process activation (stall/kill).
"""

from __future__ import annotations

import heapq
import itertools
import operator
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Container,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import (
    BlockedProcessInfo,
    DeadlockError,
    SimulationError,
    SimulationLimitExceeded,
)

__all__ = [
    "WaitCondition",
    "WaitDelay",
    "Join",
    "Process",
    "KernelLimits",
    "Kernel",
]

#: Default bound on total process activations (the historical constant).
DEFAULT_MAX_STEPS = 2_000_000

#: How many scheduler events the diagnostic ring buffer keeps.
DEFAULT_TRACE_DEPTH = 32


#: sort key for deterministic (suspension-order) candidate wakeup
_wait_seq_of = operator.attrgetter("_wait_seq")


def _format_detail(detail) -> str:
    """Render a trace-record detail.

    The hot recording sites (delta cycles, time advances) store raw
    values — a name collection, the new time — and formatting happens
    only when a human-facing trace is actually produced."""
    if isinstance(detail, str):
        return detail
    if isinstance(detail, (int, float)):
        return f"{detail:g}"
    return ",".join(sorted(detail))


class WaitCondition:
    """Suspend until ``predicate()`` is true; re-evaluated whenever one
    of the named signals changes.  The predicate is checked immediately
    on suspension (level-sensitive), so a condition that already holds
    does not deadlock the process.  ``label`` is a human-readable
    rendering of the condition used in deadlock reports.

    ``probe`` is an optional *wake probe*: a tuple describing a
    condition shape the batched kernel (:mod:`repro.sim.batch`) can
    check by direct signal-store lookup instead of calling
    ``predicate`` — ``("eq", name, const)`` for ``until name = const``
    over a single-signal sensitivity, ``("truthy", name)`` for
    ``until name``, and ``("edge",)`` for edge waits (``on s1, s2``),
    which by construction are satisfied by any change of a watched
    signal.  A probe is only attached when it is provably equivalent
    to the predicate; the single-lane kernel ignores it.
    """

    __slots__ = (
        "predicate",
        "sensitivity",
        "label",
        "probe",
        "_index_sets",
        "_index_kernel",
    )

    def __init__(
        self,
        predicate: Callable[[], bool],
        sensitivity: Iterable[str],
        label: str = "",
        probe: Optional[tuple] = None,
    ):
        self.predicate = predicate
        self.sensitivity = frozenset(sensitivity)
        self.label = label
        self.probe = probe
        #: cached sensitivity-index buckets of ``_index_kernel``
        #: (filled on first suspension; buckets are never replaced, so
        #: they stay valid for that kernel's whole run)
        self._index_sets: Optional[Tuple[Set["Process"], ...]] = None
        self._index_kernel: Optional["Kernel"] = None


class WaitDelay:
    """Suspend for ``delay`` time units (>= 0; zero yields one delta)."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.delay = delay


class Join:
    """Suspend until every process in ``processes`` has finished."""

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = tuple(processes)


class Process:
    """One schedulable coroutine.

    ``finished`` is set when the generator completed (or the process
    was killed); ``failed`` carries the exception of a crashed process;
    ``killed`` marks termination through :meth:`Kernel.kill` (directly
    or via a fault injector's ``kill`` action).
    """

    __slots__ = (
        "name",
        "generator",
        "finished",
        "failed",
        "killed",
        "_waiting_on",
        "_wait_seq",
        "_step",
    )

    def __init__(self, name: str, generator: Iterator):
        self.name = name
        self.generator = generator
        #: bound ``__next__`` — the activation fast path
        self._step = generator.__next__
        self.finished = False
        self.failed: Optional[BaseException] = None
        #: set when the process was terminated via :meth:`Kernel.kill`
        self.killed = False
        self._waiting_on: Optional[object] = None
        #: suspension sequence number (orders condition wakeups)
        self._wait_seq: int = 0

    def __repr__(self) -> str:
        state = "finished" if self.finished else (
            "blocked" if self._waiting_on is not None else "ready"
        )
        if self.killed:
            state = "killed"
        return f"<Process {self.name} {state}>"


@dataclass(frozen=True)
class KernelLimits:
    """Configurable simulation budgets.

    ``max_steps`` bounds total process activations; ``max_delta`` bounds
    consecutive delta cycles without time advancing (a delta-cycle storm
    — two processes toggling a signal forever); ``wall_clock`` bounds
    real elapsed seconds of :meth:`Kernel.run`.  ``None`` disables a
    limit.
    """

    max_steps: Optional[int] = DEFAULT_MAX_STEPS
    max_delta: Optional[int] = None
    wall_clock: Optional[float] = None


class Kernel:
    """The event-driven scheduler and signal store.

    ``injector`` is an optional fault injector implementing the narrow
    interface of :class:`repro.sim.faults.FaultInjector`
    (``on_signal_write`` / ``on_activation``); ``trace_depth`` sizes the
    diagnostic ring buffer of recent scheduler events; ``metrics``
    attaches a :class:`repro.sim.metrics.SimMetrics` counter bag and
    ``tracer`` a :class:`repro.sim.metrics.Tracer` event recorder —
    both cost one ``is not None`` check per scheduler event when
    absent.

    ``observer`` taps the signal-change stream: it must provide
    ``on_register(name, initial)`` (called as signals are declared) and
    ``on_change(time, name, value)`` (called for every applied update
    that changed a signal's value).  :class:`repro.obs.vcd.VCDWriter`
    is one such observer; like metrics, a detached observer costs one
    ``is not None`` check per delta cycle.
    """

    def __init__(
        self,
        injector=None,
        trace_depth: int = DEFAULT_TRACE_DEPTH,
        metrics=None,
        tracer=None,
        observer=None,
    ):
        self.now: float = 0.0
        self._signals: Dict[str, object] = {}
        self._pending: Dict[str, object] = {}
        self._processes: List[Process] = []
        self._ready: List[Process] = []
        #: processes blocked on a WaitCondition, by process
        self._cond_waiters: Dict[Process, WaitCondition] = {}
        #: the sensitivity index: signal name -> processes whose wait
        #: condition lists it (maintained incrementally on suspend/wake)
        self._sensitivity: Dict[str, Set[Process]] = {}
        #: processes blocked on a Join
        self._join_waiters: Dict[Process, Join] = {}
        #: timed queue of (wake_time, seq, process)
        self._timed: List[Tuple[float, int, Process]] = []
        #: fault-delayed signal updates: (apply_time, seq, name, value)
        self._delayed_writes: List[Tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self.steps: int = 0
        self.injector = injector
        self.metrics = metrics
        self.tracer = tracer
        self.observer = observer
        #: ring buffer of (kind, detail, time) scheduler events
        self._trace: deque = deque(maxlen=max(1, trace_depth))
        #: delta cycles since time last advanced (storm detection)
        self._delta_streak: int = 0

    # -- signals ------------------------------------------------------------

    def register_signal(self, name: str, initial) -> None:
        """Declare a signal; duplicate names are an error (refinement
        generates globally unique signal names)."""
        if name in self._signals:
            raise SimulationError(f"signal {name!r} registered twice")
        self._signals[name] = initial
        if self.observer is not None:
            self.observer.on_register(name, initial)

    def has_signal(self, name: str) -> bool:
        return name in self._signals

    def read_signal(self, name: str):
        try:
            return self._signals[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def write_signal(self, name: str, value) -> None:
        """Schedule a signal update for the next delta cycle.

        An attached fault injector may drop the update, corrupt the
        value, or defer it by some simulated time."""
        if name not in self._signals:
            raise SimulationError(f"unknown signal {name!r}")
        metrics = self.metrics
        if self.injector is not None:
            action, value = self.injector.on_signal_write(self.now, name, value)
            if action == "drop":
                self._record("fault", f"dropped write {name}")
                if metrics is not None:
                    metrics.faults += 1
                return
            if action == "delay":
                value, delay = value
                self._record("fault", f"delayed write {name} by {delay}")
                if metrics is not None:
                    metrics.faults += 1
                heapq.heappush(
                    self._delayed_writes,
                    (self.now + delay, next(self._seq), name, value),
                )
                return
            if action == "corrupt":
                self._record("fault", f"corrupted write {name} -> {value!r}")
                if metrics is not None:
                    metrics.faults += 1
        if metrics is not None:
            metrics.signal_writes += 1
        self._pending[name] = value

    def signal_names(self) -> Set[str]:
        return set(self._signals)

    # -- processes -------------------------------------------------------------

    def spawn(self, name: str, generator: Iterator) -> Process:
        """Create a process and mark it ready."""
        process = Process(name, generator)
        self._processes.append(process)
        self._ready.append(process)
        if self.metrics is not None:
            self.metrics.processes_spawned += 1
        return process

    def kill(self, process: Process, reason: str = "killed") -> None:
        """Terminate ``process`` immediately, whatever it is doing.

        The process is marked finished+killed, its generator is closed,
        and it is removed from every wait structure it occupies — the
        ready queue, the condition-waiter map *and the sensitivity
        index*, the join-waiter map; entries already queued in the
        timed heap are skipped lazily when they surface.  Joiners
        waiting on the process are notified (a killed process counts as
        finished, matching the fault injector's historical behavior).
        Killing an already-finished process is a no-op.
        """
        if process.finished:
            return
        process.finished = True
        process.killed = True
        process.generator.close()
        condition = self._cond_waiters.pop(process, None)
        if condition is not None:
            self._unindex(process, condition)
        self._join_waiters.pop(process, None)
        process._waiting_on = None
        if process in self._ready:
            self._ready.remove(process)
        self._record("kill", f"{process.name} ({reason})")
        if self.metrics is not None:
            self.metrics.processes_killed += 1
        self._notify_joiners(process)

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    def blocked_processes(self) -> List[Process]:
        """Processes still suspended when the simulation went quiescent."""
        return [
            p
            for p in self._processes
            if not p.finished and p.failed is None
        ]

    def blocked_report(self) -> List[BlockedProcessInfo]:
        """Structured wait-state snapshot of every blocked process."""
        out: List[BlockedProcessInfo] = []
        for process in self.blocked_processes():
            request = process._waiting_on
            if isinstance(request, WaitCondition):
                out.append(
                    BlockedProcessInfo(
                        process.name,
                        "condition",
                        sensitivity=request.sensitivity,
                        detail=request.label,
                    )
                )
            elif isinstance(request, WaitDelay):
                out.append(
                    BlockedProcessInfo(
                        process.name, "delay", detail=f"for {request.delay}"
                    )
                )
            elif isinstance(request, Join):
                pending = [p.name for p in request.processes if not p.finished]
                out.append(
                    BlockedProcessInfo(
                        process.name, "join", detail=f"on {pending}"
                    )
                )
            else:
                out.append(BlockedProcessInfo(process.name, "ready"))
        return out

    # -- diagnostics ---------------------------------------------------------

    def _record(self, kind: str, detail) -> None:
        self._trace.append((kind, detail, self.now))
        if self.tracer is not None:
            self.tracer.record(kind, _format_detail(detail), self.now)

    def format_trace(self) -> List[str]:
        """The ring buffer rendered as short human-readable lines."""
        return [
            f"t={when:g} {kind}: {_format_detail(detail)}"
            for kind, detail, when in self._trace
        ]

    # -- the event loop -----------------------------------------------------------

    def run(
        self,
        max_steps: Optional[int] = None,
        limits: Optional[KernelLimits] = None,
        required: Iterable[Process] = (),
    ) -> None:
        """Run to quiescence.

        ``limits`` bounds the run (see :class:`KernelLimits`);
        ``max_steps`` is a shorthand overriding ``limits.max_steps``.
        Breaching a budget raises :class:`SimulationLimitExceeded`
        naming the limit that tripped.

        ``required`` lists processes that must have finished by
        quiescence; when any is still blocked, the kernel raises a
        :class:`DeadlockError` carrying every blocked process, its wait
        condition and sensitivity list, and the most recent scheduler
        events.
        """
        if limits is None:
            limits = KernelLimits()
        if max_steps is not None:
            limits = KernelLimits(
                max_steps=max_steps,
                max_delta=limits.max_delta,
                wall_clock=limits.wall_clock,
            )
        required = tuple(required)
        metrics = self.metrics
        wall_started = _time.perf_counter() if metrics is not None else 0.0
        try:
            self._run_loop(limits)
        finally:
            if metrics is not None:
                metrics.wall_seconds += _time.perf_counter() - wall_started
                metrics.note_streak(self._delta_streak)
        unfinished = [
            p.name for p in required if not p.finished and p.failed is None
        ]
        if unfinished:
            raise DeadlockError(
                blocked=self.blocked_report(),
                required=unfinished,
                time=self.now,
                trace=self.format_trace(),
            )

    def _run_loop(self, limits: KernelLimits) -> None:
        # The scheduler's innermost loop.  Limits, collaborators and the
        # fault-free activation sequence are all hoisted into locals:
        # with no injector attached, a process resume costs one trace
        # append and one generator ``send`` — no method dispatch.
        max_steps = limits.max_steps
        wall_clock = limits.wall_clock
        max_delta = limits.max_delta
        started = _time.monotonic() if wall_clock is not None else 0.0
        metrics = self.metrics
        injector = self.injector
        tracer = self.tracer
        observer = self.observer
        ready = self._ready
        trace_append = self._trace.append
        suspend = self._suspend
        pending = self._pending
        signals = self._signals
        sensitivity = self._sensitivity
        cond_waiters = self._cond_waiters
        seq = self._seq
        steps = self.steps
        delta_streak = self._delta_streak
        # all signals are registered before the loop starts, so the bus
        # strobe subset can be resolved once instead of per delta cycle
        strobes: Container[str] = (
            {name for name in signals if metrics.is_bus_strobe(name)}
            if metrics is not None
            else ()
        )
        # metrics accumulate in plain locals and flush once in the
        # ``finally`` — attribute increments per scheduler event would
        # roughly double the cost of having metrics attached
        m_activations = 0
        m_delta_cycles = 0
        m_signal_updates = 0
        m_signal_changes = 0
        m_wakeups = 0
        m_bus = 0
        try:
            while True:
                while ready:
                    process = ready.pop()
                    if process.finished:
                        continue  # killed while queued as ready
                    steps += 1
                    if max_steps is not None and steps > max_steps:
                        raise SimulationLimitExceeded(
                            f"simulation exceeded max_steps={max_steps} "
                            f"at t={self.now}",
                            limit="max_steps",
                            trace=self.format_trace(),
                        )
                    if (
                        wall_clock is not None
                        and steps % 1024 == 0
                        and _time.monotonic() - started > wall_clock
                    ):
                        raise SimulationLimitExceeded(
                            f"simulation exceeded wall_clock={wall_clock}s "
                            f"after {steps} steps at t={self.now}",
                            limit="wall_clock",
                            trace=self.format_trace(),
                        )
                    if injector is not None:
                        self._activate(process)
                        continue
                    # inlined fault-free _activate
                    m_activations += 1
                    trace_append(("run", process.name, self.now))
                    if tracer is not None:
                        tracer.record("run", process.name, self.now)
                    try:
                        request = process._step()
                    except StopIteration:
                        process.finished = True
                        self._notify_joiners(process)
                        continue
                    except SimulationError:
                        raise
                    except Exception as exc:  # surface interpreter bugs
                        process.failed = exc
                        raise SimulationError(
                            f"process {process.name!r} failed "
                            f"at t={self.now}: {exc}"
                        ) from exc
                    if type(request) is WaitCondition:
                        # inlined _suspend for the dominant request kind;
                        # level-sensitive, so continue if already true
                        if request.predicate():
                            ready.append(process)
                            continue
                        process._waiting_on = request
                        process._wait_seq = next(seq)
                        cond_waiters[process] = request
                        buckets = request._index_sets
                        if (
                            buckets is None
                            or request._index_kernel is not self
                        ):
                            resolved = []
                            for name in request.sensitivity:
                                waiters = sensitivity.get(name)
                                if waiters is None:
                                    waiters = sensitivity[name] = set()
                                resolved.append(waiters)
                            buckets = request._index_sets = tuple(resolved)
                            request._index_kernel = self
                        for waiters in buckets:
                            waiters.add(process)
                    else:
                        suspend(process, request)

                # -- delta cycle (the historical _apply_delta, inlined).
                # Apply pending signal updates; only processes indexed
                # under a signal that actually *changed value* have
                # their predicate re-checked (a write of the current
                # value wakes nobody); candidates are examined in
                # suspension order so scheduling matches the historical
                # full-scan kernel.
                changed: Optional[Iterable[str]] = None
                candidates: Iterable[Process] = ()
                if pending:
                    m_signal_updates += len(pending)
                    if len(pending) == 1:
                        # the overwhelmingly common shape: one update
                        name, value = pending.popitem()
                        if signals[name] != value:
                            signals[name] = value
                            changed = (name,)
                            candidates = sensitivity.get(name, ())
                    else:
                        changed_set: Set[str] = set()
                        for name, value in pending.items():
                            if signals[name] != value:
                                signals[name] = value
                                changed_set.add(name)
                        pending.clear()
                        if changed_set:
                            changed = changed_set
                            candidate_set: Set[Process] = set()
                            for name in changed_set:
                                waiters = sensitivity.get(name)
                                if waiters:
                                    candidate_set.update(waiters)
                            candidates = candidate_set
                if changed is not None:
                    trace_append(("delta", changed, self.now))
                    if tracer is not None:
                        tracer.record(
                            "delta", _format_detail(changed), self.now
                        )
                    if observer is not None:
                        for name in changed:
                            observer.on_change(self.now, name, signals[name])
                    if not candidates:
                        woken: Sequence[Process] = ()
                    elif len(candidates) == 1:
                        # ordering is moot for a single waiter
                        (process,) = candidates
                        woken = (
                            (process,)
                            if cond_waiters[process].predicate()
                            else ()
                        )
                    else:
                        woken = [
                            process
                            for process in sorted(
                                candidates, key=_wait_seq_of
                            )
                            if cond_waiters[process].predicate()
                        ]
                    for process in woken:
                        condition = cond_waiters.pop(process)
                        self._unindex(process, condition)
                        process._waiting_on = None
                        ready.append(process)
                    if metrics is not None:
                        m_delta_cycles += 1
                        m_signal_changes += len(changed)
                        m_wakeups += len(woken)
                        for name in changed:
                            if name in strobes and signals[name]:
                                m_bus += 1
                    delta_streak += 1
                    if max_delta is not None and delta_streak > max_delta:
                        raise SimulationLimitExceeded(
                            f"delta-cycle storm: more than "
                            f"max_delta={max_delta} delta cycles without "
                            f"time advancing at t={self.now}",
                            limit="max_delta",
                            trace=self.format_trace(),
                        )
                    continue
                if self._advance_time():
                    if metrics is not None:
                        metrics.note_streak(delta_streak)
                    delta_streak = 0
                    continue
                break  # quiescent
        finally:
            self.steps = steps
            self._delta_streak = delta_streak
            if metrics is not None:
                metrics.activations += m_activations
                metrics.delta_cycles += m_delta_cycles
                metrics.signal_updates += m_signal_updates
                metrics.signal_changes += m_signal_changes
                metrics.wakeups += m_wakeups
                metrics.bus_transactions += m_bus

    def _activate(self, process: Process) -> None:
        if self.injector is not None:
            action, arg = self.injector.on_activation(self.now, process.name)
            if action == "kill":
                self._record("fault", f"killed process {process.name}")
                if self.metrics is not None:
                    self.metrics.faults += 1
                self.kill(process, reason="fault injection")
                return
            if action == "stall":
                self._record(
                    "fault", f"stalled process {process.name} for {arg}"
                )
                if self.metrics is not None:
                    self.metrics.faults += 1
                heapq.heappush(
                    self._timed, (self.now + arg, next(self._seq), process)
                )
                return
        if self.metrics is not None:
            self.metrics.activations += 1
        self._record("run", process.name)
        try:
            request = process._step()
        except StopIteration:
            process.finished = True
            self._notify_joiners(process)
            return
        except SimulationError:
            raise
        except Exception as exc:  # surface interpreter bugs with context
            process.failed = exc
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now}: {exc}"
            ) from exc
        self._suspend(process, request)

    def _suspend(self, process: Process, request) -> None:
        if isinstance(request, WaitCondition):
            # level-sensitive: continue immediately if already true
            if request.predicate():
                self._ready.append(process)
                return
            process._waiting_on = request
            process._wait_seq = next(self._seq)
            self._cond_waiters[process] = request
            buckets = request._index_sets
            if buckets is None or request._index_kernel is not self:
                index = self._sensitivity
                resolved = []
                for name in request.sensitivity:
                    waiters = index.get(name)
                    if waiters is None:
                        waiters = index[name] = set()
                    resolved.append(waiters)
                buckets = request._index_sets = tuple(resolved)
                request._index_kernel = self
            for waiters in buckets:
                waiters.add(process)
        elif isinstance(request, WaitDelay):
            process._waiting_on = request
            heapq.heappush(
                self._timed, (self.now + request.delay, next(self._seq), process)
            )
        elif isinstance(request, Join):
            if all(p.finished for p in request.processes):
                self._ready.append(process)
                return
            process._waiting_on = request
            self._join_waiters[process] = request
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown request {request!r}"
            )

    def _notify_joiners(self, finished: Process) -> None:
        woken = [
            waiter
            for waiter, join in self._join_waiters.items()
            if finished in join.processes
            and all(p.finished for p in join.processes)
        ]
        for waiter in woken:
            del self._join_waiters[waiter]
            waiter._waiting_on = None
            self._ready.append(waiter)

    def _unindex(self, process: Process, condition: WaitCondition) -> None:
        """Drop one waiter's sensitivity-index entries.

        Empty buckets are kept: conditions cache their resolved bucket
        sets (``WaitCondition._index_sets``), so deleting a bucket would
        orphan those cached references.  The index is bounded by the
        number of distinct signal names, so the empties cost nothing.
        """
        buckets = condition._index_sets
        if buckets is not None and condition._index_kernel is self:
            for waiters in buckets:
                waiters.discard(process)
            return
        index = self._sensitivity
        for name in condition.sensitivity:
            waiters = index.get(name)
            if waiters is not None:
                waiters.discard(process)

    def _advance_time(self) -> bool:
        """Jump to the earliest timed wake-up or fault-delayed signal
        update.  Returns True when anything became runnable/pending."""
        next_proc = self._timed[0][0] if self._timed else None
        next_write = self._delayed_writes[0][0] if self._delayed_writes else None
        if next_proc is None and next_write is None:
            return False
        candidates = [t for t in (next_proc, next_write) if t is not None]
        self.now = max(self.now, min(candidates))
        self._record("advance", self.now)
        if self.metrics is not None:
            self.metrics.timesteps += 1
        while self._delayed_writes and self._delayed_writes[0][0] <= self.now:
            _, _, name, value = heapq.heappop(self._delayed_writes)
            self._pending[name] = value
        # release everything scheduled for this instant
        while self._timed and self._timed[0][0] <= self.now:
            _, _, process = heapq.heappop(self._timed)
            if process.finished:
                continue  # killed while in the timed heap
            process._waiting_on = None
            self._ready.append(process)
        return True
