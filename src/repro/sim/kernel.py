"""Discrete-event simulation kernel with VHDL-style delta cycles.

The kernel knows nothing about the IR; it schedules *processes*
(Python generators) that yield :class:`WaitCondition`,
:class:`WaitDelay` or :class:`Join` requests, and it owns the *signal*
store: signal assignments are deferred and take effect between process
activations (a delta cycle), so concurrently executing behaviors see a
consistent snapshot — the property the refined handshake protocols rely
on.

Scheduling loop:

1. run every ready process until it suspends or finishes;
2. apply pending signal updates; signals that changed wake processes
   whose sensitivity lists them (a *delta cycle* — time does not
   advance);
3. when no delta activity remains, advance time to the earliest timed
   wait;
4. when neither delta nor timed work remains, the simulation is
   *quiescent* and :meth:`Kernel.run` returns.  Refined designs contain
   endless server behaviors (memories, arbiters, bus interfaces), so
   quiescence with the application processes finished is the normal
   termination; the caller decides which processes were required to
   finish (pass them as ``required`` to get a structured
   :class:`DeadlockError` instead of a silent incomplete run).

Robustness machinery (all opt-in, zero-cost when unused):

* :class:`KernelLimits` — configurable budgets (total activations,
  delta cycles per timestep, wall-clock seconds); a breach raises
  :class:`SimulationLimitExceeded` naming the limit that tripped;
* a ring buffer of the last scheduler events, attached to limit and
  deadlock errors so a wedged protocol can be diagnosed post mortem;
* a narrow fault-injection interface: an *injector* (see
  :mod:`repro.sim.faults`) may intercept every signal write
  (drop/delay/corrupt) and every process activation (stall/kill).
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    BlockedProcessInfo,
    DeadlockError,
    SimulationError,
    SimulationLimitExceeded,
)

__all__ = [
    "WaitCondition",
    "WaitDelay",
    "Join",
    "Process",
    "KernelLimits",
    "Kernel",
]

#: Default bound on total process activations (the historical constant).
DEFAULT_MAX_STEPS = 2_000_000

#: How many scheduler events the diagnostic ring buffer keeps.
DEFAULT_TRACE_DEPTH = 32


class WaitCondition:
    """Suspend until ``predicate()`` is true; re-evaluated whenever one
    of the named signals changes.  The predicate is checked immediately
    on suspension (level-sensitive), so a condition that already holds
    does not deadlock the process.  ``label`` is a human-readable
    rendering of the condition used in deadlock reports."""

    __slots__ = ("predicate", "sensitivity", "label")

    def __init__(
        self,
        predicate: Callable[[], bool],
        sensitivity: Iterable[str],
        label: str = "",
    ):
        self.predicate = predicate
        self.sensitivity = frozenset(sensitivity)
        self.label = label


class WaitDelay:
    """Suspend for ``delay`` time units (>= 0; zero yields one delta)."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.delay = delay


class Join:
    """Suspend until every process in ``processes`` has finished."""

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = tuple(processes)


class Process:
    """One schedulable coroutine."""

    __slots__ = ("name", "generator", "finished", "failed", "killed", "_waiting_on")

    def __init__(self, name: str, generator: Iterator):
        self.name = name
        self.generator = generator
        self.finished = False
        self.failed: Optional[BaseException] = None
        #: set when a fault injector terminated the process
        self.killed = False
        self._waiting_on: Optional[object] = None

    def __repr__(self) -> str:
        state = "finished" if self.finished else (
            "blocked" if self._waiting_on is not None else "ready"
        )
        if self.killed:
            state = "killed"
        return f"<Process {self.name} {state}>"


@dataclass(frozen=True)
class KernelLimits:
    """Configurable simulation budgets.

    ``max_steps`` bounds total process activations; ``max_delta`` bounds
    consecutive delta cycles without time advancing (a delta-cycle storm
    — two processes toggling a signal forever); ``wall_clock`` bounds
    real elapsed seconds of :meth:`Kernel.run`.  ``None`` disables a
    limit.
    """

    max_steps: Optional[int] = DEFAULT_MAX_STEPS
    max_delta: Optional[int] = None
    wall_clock: Optional[float] = None


class Kernel:
    """The event-driven scheduler and signal store.

    ``injector`` is an optional fault injector implementing the narrow
    interface of :class:`repro.sim.faults.FaultInjector`
    (``on_signal_write`` / ``on_activation``); ``trace_depth`` sizes the
    diagnostic ring buffer of recent scheduler events.
    """

    def __init__(self, injector=None, trace_depth: int = DEFAULT_TRACE_DEPTH):
        self.now: float = 0.0
        self._signals: Dict[str, object] = {}
        self._pending: Dict[str, object] = {}
        self._processes: List[Process] = []
        self._ready: List[Process] = []
        #: processes blocked on a WaitCondition, by process
        self._cond_waiters: Dict[Process, WaitCondition] = {}
        #: processes blocked on a Join
        self._join_waiters: Dict[Process, Join] = {}
        #: timed queue of (wake_time, seq, process)
        self._timed: List[Tuple[float, int, Process]] = []
        #: fault-delayed signal updates: (apply_time, seq, name, value)
        self._delayed_writes: List[Tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self.steps: int = 0
        self.injector = injector
        #: ring buffer of (kind, detail, time) scheduler events
        self._trace: deque = deque(maxlen=max(1, trace_depth))
        #: delta cycles since time last advanced (storm detection)
        self._delta_streak: int = 0

    # -- signals ------------------------------------------------------------

    def register_signal(self, name: str, initial) -> None:
        """Declare a signal; duplicate names are an error (refinement
        generates globally unique signal names)."""
        if name in self._signals:
            raise SimulationError(f"signal {name!r} registered twice")
        self._signals[name] = initial

    def has_signal(self, name: str) -> bool:
        return name in self._signals

    def read_signal(self, name: str):
        try:
            return self._signals[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def write_signal(self, name: str, value) -> None:
        """Schedule a signal update for the next delta cycle.

        An attached fault injector may drop the update, corrupt the
        value, or defer it by some simulated time."""
        if name not in self._signals:
            raise SimulationError(f"unknown signal {name!r}")
        if self.injector is not None:
            action, value = self.injector.on_signal_write(self.now, name, value)
            if action == "drop":
                self._record("fault", f"dropped write {name}")
                return
            if action == "delay":
                value, delay = value
                self._record("fault", f"delayed write {name} by {delay}")
                heapq.heappush(
                    self._delayed_writes,
                    (self.now + delay, next(self._seq), name, value),
                )
                return
            if action == "corrupt":
                self._record("fault", f"corrupted write {name} -> {value!r}")
        self._pending[name] = value

    def signal_names(self) -> Set[str]:
        return set(self._signals)

    # -- processes -------------------------------------------------------------

    def spawn(self, name: str, generator: Iterator) -> Process:
        """Create a process and mark it ready."""
        process = Process(name, generator)
        self._processes.append(process)
        self._ready.append(process)
        return process

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    def blocked_processes(self) -> List[Process]:
        """Processes still suspended when the simulation went quiescent."""
        return [
            p
            for p in self._processes
            if not p.finished and p.failed is None
        ]

    def blocked_report(self) -> List[BlockedProcessInfo]:
        """Structured wait-state snapshot of every blocked process."""
        out: List[BlockedProcessInfo] = []
        for process in self.blocked_processes():
            request = process._waiting_on
            if isinstance(request, WaitCondition):
                out.append(
                    BlockedProcessInfo(
                        process.name,
                        "condition",
                        sensitivity=request.sensitivity,
                        detail=request.label,
                    )
                )
            elif isinstance(request, WaitDelay):
                out.append(
                    BlockedProcessInfo(
                        process.name, "delay", detail=f"for {request.delay}"
                    )
                )
            elif isinstance(request, Join):
                pending = [p.name for p in request.processes if not p.finished]
                out.append(
                    BlockedProcessInfo(
                        process.name, "join", detail=f"on {pending}"
                    )
                )
            else:
                out.append(BlockedProcessInfo(process.name, "ready"))
        return out

    # -- diagnostics ---------------------------------------------------------

    def _record(self, kind: str, detail) -> None:
        self._trace.append((kind, detail, self.now))

    def format_trace(self) -> List[str]:
        """The ring buffer rendered as short human-readable lines."""
        return [
            f"t={when:g} {kind}: {detail}" for kind, detail, when in self._trace
        ]

    # -- the event loop -----------------------------------------------------------

    def run(
        self,
        max_steps: Optional[int] = None,
        limits: Optional[KernelLimits] = None,
        required: Iterable[Process] = (),
    ) -> None:
        """Run to quiescence.

        ``limits`` bounds the run (see :class:`KernelLimits`);
        ``max_steps`` is a shorthand overriding ``limits.max_steps``.
        Breaching a budget raises :class:`SimulationLimitExceeded`
        naming the limit that tripped.

        ``required`` lists processes that must have finished by
        quiescence; when any is still blocked, the kernel raises a
        :class:`DeadlockError` carrying every blocked process, its wait
        condition and sensitivity list, and the most recent scheduler
        events.
        """
        if limits is None:
            limits = KernelLimits()
        if max_steps is not None:
            limits = KernelLimits(
                max_steps=max_steps,
                max_delta=limits.max_delta,
                wall_clock=limits.wall_clock,
            )
        required = tuple(required)
        started = _time.monotonic() if limits.wall_clock is not None else 0.0
        while True:
            while self._ready:
                process = self._ready.pop()
                self.steps += 1
                if limits.max_steps is not None and self.steps > limits.max_steps:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded max_steps={limits.max_steps} "
                        f"at t={self.now}",
                        limit="max_steps",
                        trace=self.format_trace(),
                    )
                if (
                    limits.wall_clock is not None
                    and self.steps % 1024 == 0
                    and _time.monotonic() - started > limits.wall_clock
                ):
                    raise SimulationLimitExceeded(
                        f"simulation exceeded wall_clock={limits.wall_clock}s "
                        f"after {self.steps} steps at t={self.now}",
                        limit="wall_clock",
                        trace=self.format_trace(),
                    )
                self._activate(process)
            if self._apply_delta():
                self._delta_streak += 1
                if (
                    limits.max_delta is not None
                    and self._delta_streak > limits.max_delta
                ):
                    raise SimulationLimitExceeded(
                        f"delta-cycle storm: more than "
                        f"max_delta={limits.max_delta} delta cycles without "
                        f"time advancing at t={self.now}",
                        limit="max_delta",
                        trace=self.format_trace(),
                    )
                continue
            if self._advance_time():
                self._delta_streak = 0
                continue
            break  # quiescent
        unfinished = [
            p.name for p in required if not p.finished and p.failed is None
        ]
        if unfinished:
            raise DeadlockError(
                blocked=self.blocked_report(),
                required=unfinished,
                time=self.now,
                trace=self.format_trace(),
            )

    def _activate(self, process: Process) -> None:
        if self.injector is not None:
            action, arg = self.injector.on_activation(self.now, process.name)
            if action == "kill":
                self._record("fault", f"killed process {process.name}")
                process.finished = True
                process.killed = True
                process.generator.close()
                self._notify_joiners(process)
                return
            if action == "stall":
                self._record(
                    "fault", f"stalled process {process.name} for {arg}"
                )
                heapq.heappush(
                    self._timed, (self.now + arg, next(self._seq), process)
                )
                return
        self._record("run", process.name)
        try:
            request = next(process.generator)
        except StopIteration:
            process.finished = True
            self._notify_joiners(process)
            return
        except SimulationError:
            raise
        except Exception as exc:  # surface interpreter bugs with context
            process.failed = exc
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now}: {exc}"
            ) from exc
        self._suspend(process, request)

    def _suspend(self, process: Process, request) -> None:
        if isinstance(request, WaitCondition):
            # level-sensitive: continue immediately if already true
            if request.predicate():
                self._ready.append(process)
                return
            process._waiting_on = request
            self._cond_waiters[process] = request
        elif isinstance(request, WaitDelay):
            process._waiting_on = request
            heapq.heappush(
                self._timed, (self.now + request.delay, next(self._seq), process)
            )
        elif isinstance(request, Join):
            if all(p.finished for p in request.processes):
                self._ready.append(process)
                return
            process._waiting_on = request
            self._join_waiters[process] = request
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown request {request!r}"
            )

    def _notify_joiners(self, finished: Process) -> None:
        woken = [
            waiter
            for waiter, join in self._join_waiters.items()
            if finished in join.processes
            and all(p.finished for p in join.processes)
        ]
        for waiter in woken:
            del self._join_waiters[waiter]
            waiter._waiting_on = None
            self._ready.append(waiter)

    def _apply_delta(self) -> bool:
        """Apply pending signal updates; wake sensitive waiters.
        Returns True when anything happened."""
        if not self._pending:
            return False
        changed: Set[str] = set()
        for name, value in self._pending.items():
            if self._signals[name] != value:
                self._signals[name] = value
                changed.add(name)
        self._pending.clear()
        if not changed:
            return False
        self._record("delta", ",".join(sorted(changed)))
        woken = [
            process
            for process, cond in self._cond_waiters.items()
            if cond.sensitivity & changed and cond.predicate()
        ]
        for process in woken:
            del self._cond_waiters[process]
            process._waiting_on = None
            self._ready.append(process)
        return True

    def _advance_time(self) -> bool:
        """Jump to the earliest timed wake-up or fault-delayed signal
        update.  Returns True when anything became runnable/pending."""
        next_proc = self._timed[0][0] if self._timed else None
        next_write = self._delayed_writes[0][0] if self._delayed_writes else None
        if next_proc is None and next_write is None:
            return False
        candidates = [t for t in (next_proc, next_write) if t is not None]
        self.now = max(self.now, min(candidates))
        self._record("advance", f"{self.now:g}")
        while self._delayed_writes and self._delayed_writes[0][0] <= self.now:
            _, _, name, value = heapq.heappop(self._delayed_writes)
            self._pending[name] = value
        # release everything scheduled for this instant
        while self._timed and self._timed[0][0] <= self.now:
            _, _, process = heapq.heappop(self._timed)
            process._waiting_on = None
            self._ready.append(process)
        return True
