"""Fault injection for the simulation stack.

Runtime-validation work (Jain & Manolios; Kolano) argues that refined
models should be *exercised under adverse conditions*, not only on the
happy path.  This module provides the adverse conditions: a
:class:`FaultInjector` driven by a seeded RNG and declarative
:class:`FaultScenario` descriptions, hooked into the kernel's
signal-update and scheduling paths through a two-method interface
(:meth:`FaultInjector.on_signal_write`,
:meth:`FaultInjector.on_activation`).

Supported fault kinds:

``drop``
    Discard a signal update (a lost handshake edge — the paper's
    Figure 5d protocol deadlocks without its ``done`` acknowledge).
``delay``
    Defer a signal update by ``delay`` simulated time units (a slow
    driver or a glitching bus).
``corrupt``
    Replace the written value with ``value``.
``flip_bit``
    XOR bit ``bit`` into an integer signal value (a single-event upset
    on a data bus line).
``stall``
    Suspend a process for ``delay`` time units instead of activating it
    (a slow server).
``kill``
    Terminate a process outright (a dead daemon server).

Targets are matched by :mod:`fnmatch` glob over the signal name (signal
kinds) or the process name (process kinds).  Scenario activation is
gated by ``after`` (simulation time), ``count`` (how many times the
scenario fires) and ``probability`` (per matching event; the seeded RNG
is only consulted when ``probability < 1``, so fully deterministic
scenarios consume no randomness).  Identical seeds and scenarios give
identical injection sequences — campaign outputs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import List, Optional, Sequence, Tuple

from repro.errors import FaultConfigError

__all__ = [
    "SIGNAL_FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "FaultScenario",
    "FaultEvent",
    "FaultInjector",
]

#: Fault kinds intercepting :meth:`Kernel.write_signal`.
SIGNAL_FAULT_KINDS = frozenset({"drop", "delay", "corrupt", "flip_bit"})

#: Fault kinds intercepting process activation.
PROCESS_FAULT_KINDS = frozenset({"stall", "kill"})


@dataclass(frozen=True)
class FaultScenario:
    """One declarative fault description.

    ``expect`` documents the campaign expectation: ``"recover"`` (the
    refined design should still be functionally equivalent under this
    fault) or ``"detect"`` (the fault must be caught — as a deadlock, a
    limit breach, or an equivalence mismatch — never silently ignored).
    """

    name: str
    kind: str
    target: str
    count: int = 1
    after: float = 0.0
    probability: float = 1.0
    delay: float = 0.0
    value: object = None
    bit: int = 0
    expect: str = "recover"

    def __post_init__(self):
        if self.kind not in SIGNAL_FAULT_KINDS | PROCESS_FAULT_KINDS:
            raise FaultConfigError(
                f"scenario {self.name!r}: unknown fault kind {self.kind!r}"
            )
        if self.count < 1:
            raise FaultConfigError(
                f"scenario {self.name!r}: count must be >= 1, got {self.count}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultConfigError(
                f"scenario {self.name!r}: probability must be in (0, 1], "
                f"got {self.probability}"
            )
        if self.kind in ("delay", "stall") and self.delay <= 0:
            raise FaultConfigError(
                f"scenario {self.name!r}: {self.kind} needs a positive delay"
            )
        if self.bit < 0:
            raise FaultConfigError(
                f"scenario {self.name!r}: bit must be >= 0, got {self.bit}"
            )
        if self.expect not in ("recover", "detect"):
            raise FaultConfigError(
                f"scenario {self.name!r}: expect must be 'recover' or "
                f"'detect', got {self.expect!r}"
            )

    def scaled(self, time_unit: float) -> "FaultScenario":
        """A copy with time fields multiplied by ``time_unit`` — lets a
        catalog express ``delay``/``after`` in protocol ticks while the
        injector works in kernel seconds."""
        return replace(
            self, after=self.after * time_unit, delay=self.delay * time_unit
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (for reporting and assertions in tests)."""

    time: float
    scenario: str
    kind: str
    target: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"t={self.time:g} [{self.scenario}] {self.kind} {self.target}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class _Armed:
    """Mutable firing state of one scenario."""

    scenario: FaultScenario
    remaining: int = field(default=0)

    def __post_init__(self):
        self.remaining = self.scenario.count


class FaultInjector:
    """Applies :class:`FaultScenario` s to a running kernel.

    One injector instance drives one simulation run (firing counts are
    consumed); build a fresh injector per run.  Attach it via
    ``Kernel(injector=...)`` or ``Simulator.run(injector=...)``.
    """

    def __init__(self, scenarios: Sequence[FaultScenario], seed: int = 0):
        self.scenarios = tuple(scenarios)
        self.seed = seed
        self._rng = random.Random(seed)
        self._armed = [_Armed(s) for s in self.scenarios]
        #: every fault actually injected, in order
        self.events: List[FaultEvent] = []

    @property
    def fired(self) -> int:
        """Total number of faults injected so far."""
        return len(self.events)

    def fired_for(self, scenario_name: str) -> int:
        return sum(1 for e in self.events if e.scenario == scenario_name)

    def _match(self, kinds, now: float, name: str) -> Optional[FaultScenario]:
        for armed in self._armed:
            scenario = armed.scenario
            if scenario.kind not in kinds:
                continue
            if armed.remaining <= 0 or now < scenario.after:
                continue
            if not fnmatchcase(name, scenario.target):
                continue
            if (
                scenario.probability < 1.0
                and self._rng.random() >= scenario.probability
            ):
                continue
            armed.remaining -= 1
            return scenario
        return None

    # -- the kernel-facing interface ----------------------------------------

    def on_signal_write(
        self, now: float, name: str, value
    ) -> Tuple[str, object]:
        """Intercept one signal update.

        Returns ``(action, payload)`` where action is ``"pass"`` (apply
        ``payload`` as the value), ``"drop"`` (discard the update),
        ``"delay"`` (payload is ``(value, delay)``) or ``"corrupt"``
        (apply the corrupted payload).
        """
        scenario = self._match(SIGNAL_FAULT_KINDS, now, name)
        if scenario is None:
            return "pass", value
        if scenario.kind == "drop":
            self._log(now, scenario, name, f"suppressed value {value!r}")
            return "drop", None
        if scenario.kind == "delay":
            self._log(now, scenario, name, f"deferred by {scenario.delay:g}")
            return "delay", (value, scenario.delay)
        if scenario.kind == "corrupt":
            self._log(
                now, scenario, name, f"{value!r} -> {scenario.value!r}"
            )
            return "corrupt", scenario.value
        # flip_bit
        if not isinstance(value, int):
            self._log(now, scenario, name, "skipped: non-integer value")
            return "pass", value
        flipped = value ^ (1 << scenario.bit)
        self._log(now, scenario, name, f"{value!r} -> {flipped!r}")
        return "corrupt", flipped

    def on_activation(self, now: float, process_name: str) -> Tuple[str, object]:
        """Intercept one process activation.

        Returns ``("run", None)``, ``("stall", delay)`` or
        ``("kill", None)``.
        """
        scenario = self._match(PROCESS_FAULT_KINDS, now, process_name)
        if scenario is None:
            return "run", None
        if scenario.kind == "stall":
            self._log(
                now, scenario, process_name, f"stalled {scenario.delay:g}"
            )
            return "stall", scenario.delay
        self._log(now, scenario, process_name, "killed")
        return "kill", None

    # -- reporting -----------------------------------------------------------

    def _log(self, now, scenario: FaultScenario, target: str, detail: str):
        self.events.append(
            FaultEvent(now, scenario.name, scenario.kind, target, detail)
        )

    def describe(self) -> str:
        if not self.events:
            return "no faults injected"
        return "\n".join(str(event) for event in self.events)
