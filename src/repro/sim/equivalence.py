"""Functional-equivalence checking of original vs refined designs.

The paper's third motivation for refinement: "the interface design of
the refinement makes the partitioned specification simulatable,
allowing the designer to verify the system's functional correctness
after a design step".  This module performs that verification:

* run the original specification and the refined one on the same
  inputs;
* compare (a) the write *traces* of every output variable (observable
  behaviour, order-sensitive), (b) the final values of the outputs, and
  (c) the final values of every relocated internal variable, read out
  of the memory behavior's storage through the refined design's
  observation map.

The refined run completes at kernel quiescence with the root process
finished; the endless server behaviors (memories, arbiters, interfaces,
``B_NEW`` wrappers) legitimately remain blocked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import EquivalenceError
from repro.refine.refiner import RefinedDesign
from repro.sim.interpreter import SimulationResult, Simulator

__all__ = [
    "Mismatch",
    "EquivalenceReport",
    "check_equivalence",
    "check_equivalence_batch",
    "compare_runs",
]


@dataclass
class Mismatch:
    """One observed divergence."""

    kind: str  # "output-trace" | "output-value" | "memory-value" | "completion"
    name: str
    original: object
    refined: object

    def __str__(self) -> str:
        return (
            f"{self.kind} mismatch on {self.name!r}: "
            f"original={self.original!r} refined={self.refined!r}"
        )


class EquivalenceReport:
    """Outcome of one equivalence check."""

    def __init__(
        self,
        design: RefinedDesign,
        inputs: Dict[str, object],
        original_run: SimulationResult,
        refined_run: SimulationResult,
    ):
        self.design = design
        self.inputs = dict(inputs)
        self.original_run = original_run
        self.refined_run = refined_run
        self.mismatches: List[Mismatch] = []

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def raise_if_mismatched(self) -> "EquivalenceReport":
        if not self.equivalent:
            raise EquivalenceError(
                f"{self.design.model.name} refinement of "
                f"{self.design.original.name!r} diverges: "
                + "; ".join(str(m) for m in self.mismatches[:5])
            )
        return self

    def describe(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "MISMATCH"
        lines = [
            f"{verdict}: {self.design.original.name} vs "
            f"{self.design.model.name} (inputs={self.inputs or '{}'})"
        ]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def check_equivalence(
    design: RefinedDesign,
    inputs: Optional[Dict[str, object]] = None,
    max_steps: Optional[int] = None,
    limits=None,
    injector=None,
    require_completion: bool = False,
) -> EquivalenceReport:
    """Co-simulate and compare original vs refined.

    ``limits`` (a :class:`repro.sim.kernel.KernelLimits`) bounds both
    runs; ``max_steps`` is a shorthand overriding ``limits.max_steps``.
    ``injector`` attaches a fault injector to the *refined* run only
    (the original is the golden reference), and with
    ``require_completion=True`` a refined run that goes quiescent
    without finishing raises :class:`repro.errors.DeadlockError`
    instead of reporting a completion mismatch — the fault-injection
    campaign's detection path.
    """
    inputs = dict(inputs or {})
    original_run = Simulator(design.original).run(
        inputs=inputs, max_steps=max_steps, limits=limits
    )
    refined_run = Simulator(design.spec).run(
        inputs=inputs,
        max_steps=max_steps,
        limits=limits,
        injector=injector,
        require_completion=require_completion,
    )
    return compare_runs(design, inputs, original_run, refined_run)


def compare_runs(
    design: RefinedDesign,
    inputs: Dict[str, object],
    original_run: SimulationResult,
    refined_run: SimulationResult,
) -> EquivalenceReport:
    """Build the :class:`EquivalenceReport` for one original/refined
    run pair — the comparison half of :func:`check_equivalence`,
    shared with the batched checker."""
    report = EquivalenceReport(design, inputs, original_run, refined_run)

    if original_run.completed != refined_run.completed:
        report.mismatches.append(
            Mismatch(
                "completion",
                design.spec.top.name,
                original_run.completed,
                refined_run.completed,
            )
        )
        return report

    for output in design.original.outputs():
        original_trace = [e.value for e in original_run.output_trace(output.name)]
        refined_trace = [e.value for e in refined_run.output_trace(output.name)]
        if original_trace != refined_trace:
            report.mismatches.append(
                Mismatch("output-trace", output.name, original_trace, refined_trace)
            )
        original_value = original_run.value_of(output.name)
        refined_value = refined_run.value_of(output.name)
        if original_value != refined_value:
            report.mismatches.append(
                Mismatch("output-value", output.name, original_value, refined_value)
            )

    for variable, holder in sorted(design.observation_map.items()):
        original_value = original_run.value_of(variable)
        refined_value = refined_run.value_of(variable, behavior=holder)
        if original_value != refined_value:
            report.mismatches.append(
                Mismatch("memory-value", variable, original_value, refined_value)
            )
    return report


def check_equivalence_batch(
    design: RefinedDesign,
    input_vectors: Sequence[Optional[Dict[str, object]]],
    max_steps: Optional[int] = None,
    limits=None,
    require_completion: bool = False,
    quantum: Optional[int] = None,
) -> List[EquivalenceReport]:
    """Co-simulate many input vectors of one design, batched.

    The batched analogue of calling :func:`check_equivalence` once per
    vector: the original and the refined specification each run as one
    multi-lane batch (compiled once, every vector a lane), and each
    lane pair is compared with the identical :func:`compare_runs`
    logic — reports are byte-for-byte what the serial calls produce.
    A faulted lane re-raises its (replayed, single-lane-exact) error,
    matching the serial path's propagation.  Fault injection is not
    supported here; use :func:`check_equivalence`.
    """
    from repro.sim.batch import DEFAULT_QUANTUM, BatchSimulator

    vectors = [dict(v or {}) for v in input_vectors]
    quantum = DEFAULT_QUANTUM if quantum is None else quantum
    original_batch = BatchSimulator(design.original).run_batch(
        vectors, max_steps=max_steps, limits=limits, quantum=quantum
    )
    refined_batch = BatchSimulator(design.spec).run_batch(
        vectors,
        max_steps=max_steps,
        limits=limits,
        require_completion=require_completion,
        quantum=quantum,
    )
    original_batch.raise_first_error()
    refined_batch.raise_first_error()
    return [
        compare_runs(
            design,
            vectors[i],
            original_batch[i].result,
            refined_batch[i].result,
        )
        for i in range(len(vectors))
    ]
