"""Access-graph derivation and partition-aware analysis."""

from repro.graph.access_graph import (
    AccessGraph,
    ChannelKind,
    ControlChannel,
    DataChannel,
)
from repro.graph.analysis import (
    VariableClassification,
    channel_matrix,
    classify_variables,
    cut_channels,
)

__all__ = [
    "AccessGraph",
    "ChannelKind",
    "ControlChannel",
    "DataChannel",
    "VariableClassification",
    "channel_matrix",
    "classify_variables",
    "cut_channels",
]
