"""Partition-aware analysis of the access graph.

Implements the paper's §3 variable classification:

    "There are some variables which are accessed only by behaviors in
    the same partition as themselves.  These variables are called
    **local variables**. [...] There are some variables which are
    accessed by behaviors residing in different partitions.  Those
    variables are called **global variables**."

plus the channel-cut queries the estimators and refiners share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.graph.access_graph import AccessGraph, DataChannel
from repro.partition.partition import Partition

__all__ = ["VariableClassification", "classify_variables", "cut_channels",
           "channel_matrix"]


@dataclass
class VariableClassification:
    """Local/global split of the partitionable variables.

    ``local`` maps each component to the variables local to it;
    ``global_vars`` lists variables accessed from more than one
    partition, with their home component retained for memory placement.
    """

    local: Dict[str, List[str]]
    global_vars: List[str]
    home: Dict[str, str]
    accessor_components: Dict[str, Set[str]]

    def is_global(self, variable: str) -> bool:
        return variable in self.global_vars

    def is_local(self, variable: str) -> bool:
        return variable in self.home and variable not in self.global_vars

    def all_local(self) -> List[str]:
        out: List[str] = []
        for names in self.local.values():
            out.extend(names)
        return sorted(out)

    @property
    def local_count(self) -> int:
        return sum(len(names) for names in self.local.values())

    @property
    def global_count(self) -> int:
        return len(self.global_vars)

    def ratio_label(self) -> str:
        """The paper's Design1/2/3 axis: how locals compare to globals."""
        if self.local_count == self.global_count:
            return "Local = Global"
        if self.local_count > self.global_count:
            return "Local > Global"
        return "Local < Global"

    def describe(self) -> str:
        lines = [
            f"{self.local_count} local / {self.global_count} global "
            f"({self.ratio_label()})"
        ]
        for component in sorted(self.local):
            names = ", ".join(sorted(self.local[component])) or "-"
            lines.append(f"  local to {component}: {names}")
        lines.append("  global: " + (", ".join(sorted(self.global_vars)) or "-"))
        return "\n".join(lines)


def classify_variables(
    graph: AccessGraph, partition: Partition
) -> VariableClassification:
    """Split variables into local/global per the paper's definition.

    A variable nobody accesses counts as local to its home component
    (it occupies memory but generates no traffic).
    """
    local: Dict[str, List[str]] = {c: [] for c in partition.components()}
    global_vars: List[str] = []
    home: Dict[str, str] = {}
    accessor_components: Dict[str, Set[str]] = {}

    for variable in sorted(graph.variable_names):
        home_component = partition.component_of_variable(variable)
        home[variable] = home_component
        components = {
            partition.effective_component_of_behavior(behavior)
            for behavior in graph.accessors_of(variable)
        }
        accessor_components[variable] = components
        if components <= {home_component}:
            local[home_component].append(variable)
        else:
            global_vars.append(variable)
    return VariableClassification(
        local=local,
        global_vars=global_vars,
        home=home,
        accessor_components=accessor_components,
    )


def cut_channels(
    graph: AccessGraph, partition: Partition
) -> List[DataChannel]:
    """Data channels whose behavior and variable live on different
    components — the accesses data-related refinement must rewrite."""
    out: List[DataChannel] = []
    for channel in graph.data_channels():
        behavior_component = partition.effective_component_of_behavior(channel.behavior)
        variable_component = partition.component_of_variable(channel.variable)
        if behavior_component != variable_component:
            out.append(channel)
    return out


def channel_matrix(
    graph: AccessGraph, partition: Partition
) -> Dict[Tuple[str, str], float]:
    """Aggregate static channel weight between component pairs.

    Key ``(behavior_component, variable_component)``; the diagonal is
    intra-partition traffic.  Used by the partitioners' cost function.
    """
    matrix: Dict[Tuple[str, str], float] = {}
    for channel in graph.data_channels():
        key = (
            partition.effective_component_of_behavior(channel.behavior),
            partition.component_of_variable(channel.variable),
        )
        matrix[key] = matrix.get(key, 0.0) + channel.weight
    return matrix
