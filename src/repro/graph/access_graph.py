"""Access-graph construction — deriving the paper's implicit channels.

Paper §2: "some functional objects such as behaviors and variables are
explicitly defined while other functional objects such as channels are
implicit and can only be derived from the specification".  This module
performs that derivation:

* **data-access channels** connect a behavior to a variable it reads or
  writes.  They come from two places: statements inside leaf behaviors,
  and *transition conditions* in sequential composites (the condition
  ``x > 1`` of an arc ``A:(x>1,B)`` is evaluated right after ``A``
  completes, so the access is attributed to the arc's source behavior —
  this is what forces the non-leaf data refinement of Figure 6);
* **control channels** represent execution sequencing between sibling
  behaviors (the arcs themselves).

Only *partitionable* variables appear in the graph: specification-scope
plain variables.  Behavior-local declarations travel with their behavior
during partitioning and signals are refinement artifacts, so neither is
a node.

Loop nesting multiplies the *static weight* of an access site by the
loop's iteration estimate (``For`` bounds when constant, the ``expect``
annotation on ``While``); the dynamic profile from simulation refines
these weights later, but the static weights alone already order the
designs of Figure 9 correctly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.spec.behavior import (
    CompositeBehavior,
    LeafBehavior,
)
from repro.spec.expr import Const, Expr, free_variables
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Body,
    For,
    Stmt,
    While,
)
from repro.spec.variable import StorageClass
from repro.spec.visitor import statement_reads, statement_writes

__all__ = ["ChannelKind", "DataChannel", "ControlChannel", "AccessGraph"]

#: Iteration estimate used for a While loop with no ``expect`` annotation.
DEFAULT_LOOP_WEIGHT = 8


class ChannelKind(enum.Enum):
    """What a channel carries."""

    READ = "read"
    WRITE = "write"
    CONTROL = "control"


@dataclass
class DataChannel:
    """An implicit behavior <-> variable channel.

    ``sites`` counts textual access sites; ``weight`` is the
    loop-adjusted static access-count estimate used for transfer rates
    until a dynamic profile replaces it.
    """

    behavior: str
    variable: str
    kind: ChannelKind
    sites: int = 0
    weight: float = 0.0

    @property
    def key(self) -> Tuple[str, str, "ChannelKind"]:
        return (self.behavior, self.variable, self.kind)

    def __repr__(self) -> str:
        return (
            f"DataChannel({self.behavior} -{self.kind.value}-> {self.variable}, "
            f"sites={self.sites}, weight={self.weight:g})"
        )


@dataclass
class ControlChannel:
    """An execution-sequence channel between two sibling behaviors."""

    composite: str
    source: str
    target: Optional[str]
    condition: Optional[Expr]

    def __repr__(self) -> str:
        target = self.target if self.target is not None else "<complete>"
        return f"ControlChannel({self.source} -> {target} in {self.composite})"


class AccessGraph:
    """The derived access graph of a specification.

    Nodes are behavior names and (specification-scope) variable names;
    edges are :class:`DataChannel` and :class:`ControlChannel` objects.
    Build one with :meth:`from_specification`.
    """

    def __init__(self, spec: Specification):
        self.spec = spec
        self._data: Dict[Tuple[str, str, ChannelKind], DataChannel] = {}
        self._control: List[ControlChannel] = []
        #: Names of the partitionable variables (graph variable nodes).
        self.variable_names: Set[str] = set()
        #: Names of every behavior in the tree (graph behavior nodes).
        self.behavior_names: Set[str] = set()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_specification(cls, spec: Specification) -> "AccessGraph":
        """Derive all channels from ``spec``."""
        graph = cls(spec)
        # partitionable variables: internal, specification-scope, plain
        # storage.  INPUT/OUTPUT variables model the system's environment
        # interface (pins); they stay directly accessible on every
        # component and are never mapped to memories.
        from repro.spec.variable import Role

        graph.variable_names = {
            v.name
            for v in spec.variables
            if v.kind is StorageClass.VARIABLE and v.role is Role.INTERNAL
        }
        for behavior in spec.behaviors():
            graph.behavior_names.add(behavior.name)
        for behavior in spec.behaviors():
            if isinstance(behavior, LeafBehavior):
                graph._scan_leaf(behavior)
            elif isinstance(behavior, CompositeBehavior):
                graph._scan_composite(behavior)
        return graph

    def _record(
        self, behavior: str, variable: str, kind: ChannelKind, weight: float
    ) -> None:
        if variable not in self.variable_names:
            return  # local declaration or signal: not a graph node
        key = (behavior, variable, kind)
        channel = self._data.get(key)
        if channel is None:
            channel = DataChannel(behavior, variable, kind)
            self._data[key] = channel
        channel.sites += 1
        channel.weight += weight

    def _scan_leaf(self, behavior: LeafBehavior) -> None:
        self._scan_body(behavior, behavior.stmt_body, 1.0)

    def _scan_body(self, behavior: LeafBehavior, stmts: Body, weight: float) -> None:
        for stmt in stmts:
            for name in statement_reads(stmt):
                self._record(behavior.name, name, ChannelKind.READ, weight)
            for name in statement_writes(stmt):
                self._record(behavior.name, name, ChannelKind.WRITE, weight)
            nested_weight = weight * _loop_multiplier(stmt)
            for nested in stmt.child_bodies():
                self._scan_body(behavior, nested, nested_weight)

    def _scan_composite(self, behavior: CompositeBehavior) -> None:
        for t in behavior.transitions:
            self._control.append(
                ControlChannel(behavior.name, t.source, t.target, t.condition)
            )
            if t.condition is not None:
                # the condition is evaluated by the composite's
                # sequencer when the source child completes; the
                # *composite* is the accessing behavior.  (Refinement
                # places the fetch at the end of the source child's
                # slot — Figure 6 — but that slot always executes on
                # the composite's home component, even when the source
                # child itself was moved and replaced by a B_CTRL.)
                for name in sorted(free_variables(t.condition)):
                    self._record(behavior.name, name, ChannelKind.READ, 1.0)

    # -- queries -----------------------------------------------------------------

    def data_channels(self) -> List[DataChannel]:
        """All data-access channels, deterministic order."""
        return sorted(
            self._data.values(),
            key=lambda c: (c.behavior, c.variable, c.kind.value),
        )

    def control_channels(self) -> List[ControlChannel]:
        """All control channels in declaration order."""
        return list(self._control)

    def channel_count(self) -> int:
        """Number of data-access channels (the paper reports 52 for the
        medical system)."""
        return len(self._data)

    def channels_of_behavior(self, behavior: str) -> List[DataChannel]:
        """Data channels whose accessor is ``behavior``."""
        if behavior not in self.behavior_names:
            raise GraphError(f"unknown behavior {behavior!r}")
        return [c for c in self.data_channels() if c.behavior == behavior]

    def channels_of_variable(self, variable: str) -> List[DataChannel]:
        """Data channels touching ``variable``."""
        if variable not in self.variable_names:
            raise GraphError(f"unknown variable {variable!r}")
        return [c for c in self.data_channels() if c.variable == variable]

    def accessors_of(self, variable: str) -> Set[str]:
        """Names of all behaviors that access ``variable``."""
        return {c.behavior for c in self.channels_of_variable(variable)}

    def variables_accessed_by(self, behavior: str) -> Set[str]:
        """Names of all variables ``behavior`` accesses."""
        return {c.variable for c in self.data_channels() if c.behavior == behavior}

    def total_weight(self, behavior: str, variable: str) -> float:
        """Combined read+write static weight between a behavior and a
        variable."""
        total = 0.0
        for kind in (ChannelKind.READ, ChannelKind.WRITE):
            channel = self._data.get((behavior, variable, kind))
            if channel is not None:
                total += channel.weight
        return total

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` for ad-hoc analysis.

        Behavior nodes carry ``kind='behavior'``, variable nodes
        ``kind='variable'``; data edges carry the channel weight.
        """
        import networkx as nx

        g = nx.MultiDiGraph(name=self.spec.name)
        for name in sorted(self.behavior_names):
            g.add_node(name, kind="behavior")
        for name in sorted(self.variable_names):
            g.add_node(name, kind="variable")
        for channel in self.data_channels():
            if channel.kind is ChannelKind.READ:
                g.add_edge(
                    channel.variable, channel.behavior,
                    kind="read", weight=channel.weight,
                )
            else:
                g.add_edge(
                    channel.behavior, channel.variable,
                    kind="write", weight=channel.weight,
                )
        for channel in self.control_channels():
            if channel.target is not None:
                g.add_edge(channel.source, channel.target, kind="control")
        return g


def _loop_multiplier(stmt: Stmt) -> float:
    """Static iteration estimate for loop statements (1 for the rest)."""
    if isinstance(stmt, For):
        if isinstance(stmt.start, Const) and isinstance(stmt.stop, Const):
            start, stop = stmt.start.value, stmt.stop.value
            if isinstance(start, int) and isinstance(stop, int):
                return float(max(0, stop - start + 1))
        return float(DEFAULT_LOOP_WEIGHT)
    if isinstance(stmt, While):
        if stmt.expected_iterations is not None:
            return float(stmt.expected_iterations)
        if stmt.cond == Const(True):
            # endless server loop: weight its body once; dynamic
            # profiling owns the real count
            return 1.0
        return float(DEFAULT_LOOP_WEIGHT)
    return 1.0
