"""The partition data model.

A partition assigns *partitionable objects* — behaviors and
specification-scope variables — to named system components (the result
of the paper's partitioning task, which model refinement takes as
input; Figure 1c, Figure 2).

Behaviors may be assigned at any granularity: assigning a composite
assigns its whole subtree.  Every leaf behavior must resolve to a
component via itself or its nearest assigned ancestor, and every
partitionable variable must be assigned explicitly (variables have a
*home* component even in models that later map them to global memory —
the home decides which local memory holds them in Model4 and which
global memory module they land in for Model2/Model3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PartitionError
from repro.spec.behavior import Behavior
from repro.spec.specification import Specification
from repro.spec.variable import StorageClass

__all__ = ["Partition"]


class Partition:
    """An assignment of behaviors and variables to components.

    ``assignment`` maps object names (behavior names and global variable
    names) to component names.  Component order follows first
    appearance, so callers can rely on a stable "partition 1, partition
    2, ..." numbering (the p of the bus-count formulas).
    """

    def __init__(
        self,
        spec: Specification,
        assignment: Dict[str, str],
        name: str = "partition",
    ):
        self.spec = spec
        self.name = name
        self.assignment: Dict[str, str] = dict(assignment)
        self._validate()

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        spec: Specification,
        assignment: Dict[str, str],
        name: str = "partition",
    ) -> "Partition":
        """Build and validate a partition from a plain mapping."""
        return cls(spec, assignment, name=name)

    def _validate(self) -> None:
        from repro.spec.variable import Role

        known_vars = {
            v.name
            for v in self.spec.variables
            if v.kind is StorageClass.VARIABLE and v.role is Role.INTERNAL
        }
        for obj in self.assignment:
            if self.spec.has_behavior(obj) or obj in known_vars:
                continue
            raise PartitionError(
                f"{self.name}: {obj!r} is neither a behavior nor a "
                "partitionable variable of the specification"
            )
        # every leaf must resolve through an assigned ancestor
        for leaf in self.spec.leaf_behaviors():
            if self._component_of_behavior_or_none(leaf.name) is None:
                raise PartitionError(
                    f"{self.name}: leaf behavior {leaf.name!r} has no "
                    "assigned component (assign it or an ancestor)"
                )
        for var_name in known_vars:
            if var_name not in self.assignment:
                raise PartitionError(
                    f"{self.name}: variable {var_name!r} is unassigned"
                )

    # -- lookups ------------------------------------------------------------------

    def components(self) -> List[str]:
        """Component names in first-appearance order."""
        seen: List[str] = []
        for component in self.assignment.values():
            if component not in seen:
                seen.append(component)
        return seen

    @property
    def p(self) -> int:
        """Number of partitions (the p of the paper's bus formulas)."""
        return len(self.components())

    def component_of_behavior(self, behavior_name: str) -> str:
        """Component a behavior executes on (nearest assigned
        ancestor-or-self)."""
        component = self._component_of_behavior_or_none(behavior_name)
        if component is None:
            raise PartitionError(
                f"{self.name}: behavior {behavior_name!r} resolves to no component"
            )
        return component

    def _component_of_behavior_or_none(self, behavior_name: str) -> Optional[str]:
        node: Optional[Behavior] = self.spec.find_behavior(behavior_name)
        while node is not None:
            direct = self.assignment.get(node.name)
            if direct is not None:
                return direct
            node = node.parent
        return None

    def effective_component_of_behavior(self, behavior_name: str) -> str:
        """Like :meth:`component_of_behavior`, but an unassigned
        root-path composite resolves through its *initial* child — the
        side the composite's control structure lives on.  This is the
        resolution refinement and estimation share for composite
        behaviors (e.g. a top-level sequencer nobody assigned
        explicitly)."""
        name = behavior_name
        while True:
            try:
                return self.component_of_behavior(name)
            except PartitionError:
                behavior = self.spec.find_behavior(name)
                subs = getattr(behavior, "subs", None)
                if subs is None:
                    raise
                name = behavior.initial

    def component_of_variable(self, var_name: str) -> str:
        """Home component of a partitionable variable."""
        component = self.assignment.get(var_name)
        if component is None:
            raise PartitionError(
                f"{self.name}: variable {var_name!r} is unassigned"
            )
        return component

    def behaviors_of(self, component: str) -> List[str]:
        """Directly assigned behavior names on ``component``."""
        return [
            obj
            for obj, comp in self.assignment.items()
            if comp == component and self.spec.has_behavior(obj)
        ]

    def variables_of(self, component: str) -> List[str]:
        """Variables homed on ``component``."""
        return [
            obj
            for obj, comp in self.assignment.items()
            if comp == component and not self.spec.has_behavior(obj)
        ]

    def leaves_of(self, component: str) -> List[str]:
        """All leaf behaviors that execute on ``component``."""
        return [
            leaf.name
            for leaf in self.spec.leaf_behaviors()
            if self.component_of_behavior(leaf.name) == component
        ]

    def moved(self, obj: str, component: str) -> "Partition":
        """A new partition with ``obj`` reassigned to ``component``
        (used by the iterative-improvement partitioners)."""
        assignment = dict(self.assignment)
        assignment[obj] = component
        return Partition(self.spec, assignment, name=self.name)

    def __repr__(self) -> str:
        return f"<Partition {self.name!r} p={self.p}>"

    def describe(self) -> str:
        """Human-readable component-by-component listing."""
        lines = [f"partition {self.name} ({self.p} components)"]
        for component in self.components():
            behaviors = ", ".join(sorted(self.behaviors_of(component))) or "-"
            variables = ", ".join(sorted(self.variables_of(component))) or "-"
            lines.append(f"  {component}: behaviors [{behaviors}] variables [{variables}]")
        return "\n".join(lines)
