"""Cost metrics for automatic partitioning.

The paper takes the partition as an input (SpecSyn [5] produced it);
these metrics give the baseline partitioners an objective in the same
spirit: minimise the *cut* (cross-partition channel weight, which is
precisely the traffic data-related refinement will turn into bus
transactions) while keeping the computational load balanced across
components.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.access_graph import AccessGraph
from repro.partition.partition import Partition
from repro.spec.visitor import count_statements

__all__ = ["cut_weight", "load_by_component", "balance_penalty", "partition_cost"]


def cut_weight(graph: AccessGraph, partition: Partition) -> float:
    """Total static weight of channels whose behavior and variable live
    on different components."""
    total = 0.0
    for channel in graph.data_channels():
        behavior_side = partition.effective_component_of_behavior(channel.behavior)
        variable_side = partition.component_of_variable(channel.variable)
        if behavior_side != variable_side:
            total += channel.weight
    return total


def load_by_component(partition: Partition) -> Dict[str, int]:
    """Statement count each component executes (a crude area/time
    proxy)."""
    load: Dict[str, int] = {c: 0 for c in partition.components()}
    for leaf in partition.spec.leaf_behaviors():
        component = partition.effective_component_of_behavior(leaf.name)
        load[component] = load.get(component, 0) + count_statements(leaf.stmt_body)
    return load


def balance_penalty(
    partition: Partition, expected_components: Optional[int] = None
) -> float:
    """Imbalance of the computational load: 0 for perfect balance,
    approaching 1 when one component does everything.

    ``expected_components`` is the number of components the partitioner
    *wants* to use; without it a partition that collapsed everything
    onto one component would score perfect balance (its fair share
    would be computed over the single surviving component)."""
    load = load_by_component(partition)
    total = sum(load.values())
    if total == 0:
        return 0.0
    biggest = max(load.values())
    fair_share = total / max(expected_components or len(load), 1)
    return (biggest - fair_share) / total


def partition_cost(
    graph: AccessGraph,
    partition: Partition,
    balance_weight: float = 0.35,
    expected_components: Optional[int] = None,
) -> float:
    """The partitioners' objective: normalised cut plus weighted
    imbalance.  Lower is better."""
    total_weight = sum(c.weight for c in graph.data_channels()) or 1.0
    return (
        cut_weight(graph, partition) / total_weight
        + balance_weight * balance_penalty(partition, expected_components)
    )
