"""Functional partitioning: the partition model and partitioners."""

from repro.partition.auto import (
    annealed_partition,
    greedy_partition,
    kl_partition,
    movable_objects,
)
from repro.partition.metrics import (
    balance_penalty,
    cut_weight,
    load_by_component,
    partition_cost,
)
from repro.partition.partition import Partition

__all__ = [
    "Partition",
    "annealed_partition",
    "greedy_partition",
    "kl_partition",
    "movable_objects",
    "balance_penalty",
    "cut_weight",
    "load_by_component",
    "partition_cost",
]
