"""Automatic partitioners — baselines standing in for SpecSyn's [5].

Three algorithms over the same move space (reassign one leaf behavior
or one variable to another component) and the same objective
(:func:`repro.partition.metrics.partition_cost`):

* :func:`greedy_partition` — constructive: start with everything on the
  first component, repeatedly take the single move that most reduces
  the cost until no move helps;
* :func:`kl_partition` — Kernighan-Lin-flavoured passes: within a pass
  every object moves exactly once (always the currently best move, even
  if locally worsening), then the best prefix of the pass is kept;
* :func:`annealed_partition` — simulated annealing with a geometric
  cooling schedule and a seeded RNG (runs are reproducible).

All three return a valid :class:`Partition` covering every leaf and
every partitionable variable.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.graph.access_graph import AccessGraph
from repro.partition.metrics import partition_cost
from repro.partition.partition import Partition
from repro.spec.specification import Specification

__all__ = ["movable_objects", "greedy_partition", "kl_partition",
           "annealed_partition"]


def movable_objects(spec: Specification, graph: Optional[AccessGraph] = None):
    """The move space: every leaf behavior and partitionable variable.

    ``Partition.assignment`` keys objects by bare name, so a variable
    that shares a name with a behavior would collapse into one key and
    silently co-assign both.  Rather than guess which one the caller
    meant, refuse with a structured :class:`PartitionError` whose
    ``objects`` attribute lists the colliding names.
    """
    graph = graph or AccessGraph.from_specification(spec)
    leaves = [leaf.name for leaf in spec.leaf_behaviors()]
    variables = sorted(graph.variable_names)
    behavior_names = {behavior.name for behavior in spec.behaviors()}
    collisions = sorted(behavior_names & set(variables))
    if collisions:
        raise PartitionError(
            "ambiguous move space: variable name(s) "
            f"{collisions} shadow behavior names; partition assignment "
            "keys are flat, so these objects cannot be assigned "
            "independently — rename one side",
            objects=collisions,
        )
    return leaves + variables


def _move_space(spec: Specification, graph: AccessGraph) -> List[str]:
    """``movable_objects`` plus the empty-space guard shared by all
    three algorithms: an empty move space previously crashed annealing
    with a bare ``IndexError`` and let greedy/KL return an invalid
    empty-assignment partition."""
    objects = movable_objects(spec, graph)
    if not objects:
        raise PartitionError(
            "specification has no movable objects (no leaf behaviors "
            "and no partitionable variables); nothing to partition"
        )
    return objects


def _named(partition: Partition, name: str) -> Partition:
    """A renamed clone.  The partitioners return this instead of
    mutating ``partition.name`` so a caller-supplied seed partition is
    never modified in place (the no-improvement path used to hand back
    the seed object itself, renamed)."""
    return Partition(partition.spec, partition.assignment, name=name)


def _initial(spec: Specification, objects: Sequence[str], components) -> Partition:
    """Round-robin start: balanced, so descent spends its moves
    reducing the cut instead of fixing a lopsided load."""
    assignment = {
        obj: components[index % len(components)]
        for index, obj in enumerate(objects)
    }
    return Partition(spec, assignment, name="auto")


def _cost(graph, partition, balance_weight, expected_components):
    return partition_cost(
        graph,
        partition,
        balance_weight=balance_weight,
        expected_components=expected_components,
    )


def greedy_partition(
    spec: Specification,
    components: Sequence[str] = ("SW", "HW"),
    graph: Optional[AccessGraph] = None,
    balance_weight: float = 0.35,
    max_rounds: int = 200,
) -> Partition:
    """Steepest-descent constructive partitioning."""
    if len(components) < 2:
        raise PartitionError("need at least two components to partition")
    graph = graph or AccessGraph.from_specification(spec)
    objects = _move_space(spec, graph)
    current = _initial(spec, objects, components)
    current_cost = _cost(graph, current, balance_weight, len(components))

    for _ in range(max_rounds):
        best_move: Optional[Tuple[str, str]] = None
        best_cost = current_cost
        for obj in objects:
            here = current.assignment[obj]
            for component in components:
                if component == here:
                    continue
                candidate = current.moved(obj, component)
                cost = _cost(graph, candidate, balance_weight, len(components))
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_move = (obj, component)
        if best_move is None:
            break
        current = current.moved(*best_move)
        current_cost = best_cost
    return _named(current, "greedy")


def kl_partition(
    spec: Specification,
    components: Sequence[str] = ("SW", "HW"),
    graph: Optional[AccessGraph] = None,
    balance_weight: float = 0.35,
    max_passes: int = 8,
    seed_partition: Optional[Partition] = None,
) -> Partition:
    """Kernighan-Lin-style iterative improvement with per-pass locking
    and best-prefix rollback."""
    if len(components) < 2:
        raise PartitionError("need at least two components to partition")
    graph = graph or AccessGraph.from_specification(spec)
    objects = _move_space(spec, graph)
    current = seed_partition or _initial(spec, objects, components)
    current_cost = _cost(graph, current, balance_weight, len(components))

    for _ in range(max_passes):
        locked: set = set()
        trail: List[Tuple[Partition, float]] = []
        working = current
        working_cost = current_cost
        while len(locked) < len(objects):
            best_move = None
            best_cost = math.inf
            for obj in objects:
                if obj in locked:
                    continue
                here = working.assignment[obj]
                for component in components:
                    if component == here:
                        continue
                    candidate = working.moved(obj, component)
                    cost = _cost(graph, candidate, balance_weight, len(components))
                    if cost < best_cost:
                        best_cost = cost
                        best_move = (obj, component, candidate)
            if best_move is None:
                break
            obj, component, working = best_move[0], best_move[1], best_move[2]
            working_cost = best_cost
            locked.add(obj)
            trail.append((working, working_cost))
        if not trail:
            break
        prefix_best = min(trail, key=lambda item: item[1])
        if prefix_best[1] < current_cost - 1e-12:
            current, current_cost = prefix_best
        else:
            break
    return _named(current, "kl")


def annealed_partition(
    spec: Specification,
    components: Sequence[str] = ("SW", "HW"),
    graph: Optional[AccessGraph] = None,
    balance_weight: float = 0.35,
    seed: int = 1996,
    steps: int = 2000,
    start_temperature: float = 0.25,
    cooling: float = 0.995,
    seed_partition: Optional[Partition] = None,
) -> Partition:
    """Simulated annealing over the same move space (seeded,
    reproducible).  ``seed_partition`` starts the walk from an
    existing partition instead of the round-robin initial — the
    exploration campaign uses this to re-anneal frontier members."""
    if len(components) < 2:
        raise PartitionError("need at least two components to partition")
    graph = graph or AccessGraph.from_specification(spec)
    objects = _move_space(spec, graph)
    rng = random.Random(seed)
    current = seed_partition or _initial(spec, objects, components)
    current_cost = _cost(graph, current, balance_weight, len(components))
    best, best_cost = current, current_cost
    temperature = start_temperature

    for _ in range(steps):
        obj = rng.choice(objects)
        here = current.assignment[obj]
        target = rng.choice([c for c in components if c != here])
        candidate = current.moved(obj, target)
        cost = _cost(graph, candidate, balance_weight, len(components))
        delta = cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current, current_cost = candidate, cost
            if cost < best_cost:
                best, best_cost = candidate, cost
        temperature *= cooling
    return _named(best, "annealed")
