"""Recursive-descent parser: textual SpecCharts-like source -> IR.

The grammar is exactly what :mod:`repro.lang.printer` emits, so
``parse(print_specification(s))`` round-trips any valid specification.

Grammar sketch (EBNF, ``{}`` repetition, ``[]`` optional)::

    spec        = "specification" IDENT "is" {typedecl} {decl}
                  {procedure} behavior "end" "specification" ";"
    typedecl    = "type" IDENT "is" "(" CHAR {"," CHAR} ")" ";"
    decl        = ["input"|"output"] ("variable"|"signal")
                  IDENT ":" type [":=" literal] ";"
    type        = "boolean" | ("integer"|"natural"|"bits") "<" INT ">"
                | "array" "<" type "," INT ">" | IDENT
    procedure   = "procedure" IDENT "(" [param {"," param}] ")" "is"
                  {decl} "begin" {stmt} "end" "procedure" ";"
    param       = IDENT ":" ("in"|"out"|"inout") type
    behavior    = "behavior" IDENT "is"
                  ( "leaf" {decl} "begin" {stmt} "end" "behavior" ";"
                  | ("sequential"|"concurrent") {decl} ["initial" IDENT ";"]
                    ["transitions" {trans}] {behavior} "end" "behavior" ";" )
    trans       = IDENT [":" "(" expr ")"] "->" (IDENT|"complete") ";"
    stmt        = lvalue ":=" expr ";" | lvalue "<=" expr ";"
                | IDENT "(" [expr {"," expr}] ")" ";"
                | "if" expr "then" {stmt} {"elsif" expr "then" {stmt}}
                  ["else" {stmt}] "end" "if" ";"
                | "while" expr ["expect" INT] "loop" {stmt} "end" "loop" ";"
                | "for" IDENT "in" expr "to" expr "loop" {stmt}
                  "end" "loop" ";"
                | "wait" ("until" expr | "on" IDENT {"," IDENT}
                          | "for" INT) ";"
                | "null" ";"
    expr        = or-expr with VHDL-ish precedence
                  (or < and < comparison < additive < multiplicative
                   < unary < primary)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    CompositionMode,
    LeafBehavior,
    Transition,
)
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    body as make_body,
)
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    DataType,
    EnumType,
    IntType,
)
from repro.spec.variable import Role, StorageClass, Variable

__all__ = ["parse", "parse_expression"]


def parse(source: str) -> Specification:
    """Parse a complete specification from source text."""
    return _Parser(tokenize(source)).parse_specification()


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (handy in tests and the CLI)."""
    parser = _Parser(tokenize(source))
    expr = parser._expression()
    parser._expect_eof()
    return expr


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        self._enums: Dict[str, EnumType] = {}

    # -- cursor helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        return ParseError(f"{message}, found {token}", token.line, token.column)

    def _accept(self, kind: TokenKind, text: str = None) -> Optional[Token]:
        if self._current.matches(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            wanted = text if text is not None else kind.value
            raise self._error(f"expected {wanted!r}")
        return token

    def _keyword(self, word: str) -> Token:
        return self._expect(TokenKind.KEYWORD, word)

    def _symbol(self, sym: str) -> Token:
        return self._expect(TokenKind.SYMBOL, sym)

    def _at_keyword(self, *words: str) -> bool:
        return self._current.kind is TokenKind.KEYWORD and self._current.text in words

    def _expect_eof(self) -> None:
        if self._current.kind is not TokenKind.EOF:
            raise self._error("expected end of input")

    # -- top level -----------------------------------------------------------

    def parse_specification(self) -> Specification:
        self._keyword("specification")
        name = self._expect(TokenKind.IDENT).text
        self._keyword("is")

        while self._at_keyword("type"):
            self._type_declaration()

        variables: List[Variable] = []
        while self._at_keyword("variable", "signal", "input", "output"):
            variables.append(self._declaration())

        subprograms: List[Subprogram] = []
        while self._at_keyword("procedure"):
            subprograms.append(self._procedure())

        top = self._behavior()
        self._keyword("end")
        self._keyword("specification")
        self._symbol(";")
        self._expect_eof()
        return Specification(name, top, variables, subprograms)

    def _type_declaration(self) -> None:
        self._keyword("type")
        name = self._expect(TokenKind.IDENT).text
        self._keyword("is")
        self._symbol("(")
        literals = [self._expect(TokenKind.CHAR).text]
        while self._accept(TokenKind.SYMBOL, ","):
            literals.append(self._expect(TokenKind.CHAR).text)
        self._symbol(")")
        self._symbol(";")
        if name in self._enums:
            raise self._error(f"type {name!r} declared twice")
        self._enums[name] = EnumType(name, tuple(literals))

    # -- declarations ----------------------------------------------------------

    def _declaration(self) -> Variable:
        role = Role.INTERNAL
        if self._accept(TokenKind.KEYWORD, "input"):
            role = Role.INPUT
        elif self._accept(TokenKind.KEYWORD, "output"):
            role = Role.OUTPUT
        if self._accept(TokenKind.KEYWORD, "signal"):
            kind = StorageClass.SIGNAL
        else:
            self._keyword("variable")
            kind = StorageClass.VARIABLE
        name = self._expect(TokenKind.IDENT).text
        self._symbol(":")
        dtype = self._type()
        init = None
        if self._accept(TokenKind.SYMBOL, ":="):
            init = self._literal()
        self._symbol(";")
        return Variable(name, dtype, init=init, kind=kind, role=role)

    def _type(self) -> DataType:
        if self._accept(TokenKind.KEYWORD, "boolean"):
            return BoolType()
        for keyword, signed in (("integer", True), ("natural", False)):
            if self._accept(TokenKind.KEYWORD, keyword):
                self._symbol("<")
                width = self._expect(TokenKind.INT).value
                self._symbol(">")
                return IntType(width=width, signed=signed)
        if self._accept(TokenKind.KEYWORD, "bits"):
            self._symbol("<")
            width = self._expect(TokenKind.INT).value
            self._symbol(">")
            return BitVectorType(width=width)
        if self._accept(TokenKind.KEYWORD, "array"):
            self._symbol("<")
            element = self._type()
            self._symbol(",")
            length = self._expect(TokenKind.INT).value
            self._symbol(">")
            return ArrayType(element=element, length=length)
        token = self._accept(TokenKind.IDENT)
        if token is not None:
            enum = self._enums.get(token.text)
            if enum is None:
                raise ParseError(
                    f"unknown type {token.text!r}", token.line, token.column
                )
            return enum
        raise self._error("expected a type")

    def _literal(self):
        if self._accept(TokenKind.KEYWORD, "true"):
            return True
        if self._accept(TokenKind.KEYWORD, "false"):
            return False
        minus = self._accept(TokenKind.SYMBOL, "-")
        token = self._accept(TokenKind.INT)
        if token is not None:
            return -token.value if minus else token.value
        if minus:
            raise self._error("expected an integer after '-'")
        token = self._accept(TokenKind.CHAR)
        if token is not None:
            return token.text
        if self._accept(TokenKind.SYMBOL, "("):
            items = [self._literal()]
            while self._accept(TokenKind.SYMBOL, ","):
                items.append(self._literal())
            self._symbol(")")
            return tuple(items)
        raise self._error("expected a literal")

    # -- subprograms ----------------------------------------------------------------

    def _procedure(self) -> Subprogram:
        self._keyword("procedure")
        name = self._expect(TokenKind.IDENT).text
        self._symbol("(")
        params: List[Param] = []
        if not self._current.matches(TokenKind.SYMBOL, ")"):
            params.append(self._param())
            while self._accept(TokenKind.SYMBOL, ","):
                params.append(self._param())
        self._symbol(")")
        self._keyword("is")
        decls: List[Variable] = []
        while self._at_keyword("variable", "signal", "input", "output"):
            decls.append(self._declaration())
        self._keyword("begin")
        stmts = self._statements_until(("end",))
        self._keyword("end")
        self._keyword("procedure")
        self._symbol(";")
        return Subprogram(name, params, stmts, decls)

    def _param(self) -> Param:
        name = self._expect(TokenKind.IDENT).text
        self._symbol(":")
        # direction words are contextual, not reserved (variables may
        # legitimately be named "out" or "in")
        if self._accept(TokenKind.IDENT, "inout"):
            direction = Direction.INOUT
        elif self._accept(TokenKind.IDENT, "out"):
            direction = Direction.OUT
        else:
            self._expect(TokenKind.IDENT, "in")
            direction = Direction.IN
        dtype = self._type()
        return Param(name, dtype, direction)

    # -- behaviors ----------------------------------------------------------------------

    def _behavior(self) -> Behavior:
        self._keyword("behavior")
        name = self._expect(TokenKind.IDENT).text
        self._keyword("is")
        daemon = self._accept(TokenKind.KEYWORD, "daemon") is not None
        if self._accept(TokenKind.KEYWORD, "leaf"):
            decls: List[Variable] = []
            while self._at_keyword("variable", "signal", "input", "output"):
                decls.append(self._declaration())
            self._keyword("begin")
            stmts = self._statements_until(("end",))
            self._keyword("end")
            self._keyword("behavior")
            self._symbol(";")
            leaf_behavior = LeafBehavior(name, stmts, decls)
            leaf_behavior.daemon = daemon
            return leaf_behavior

        if self._accept(TokenKind.KEYWORD, "sequential"):
            mode = CompositionMode.SEQUENTIAL
        else:
            self._keyword("concurrent")
            mode = CompositionMode.CONCURRENT

        decls = []
        while self._at_keyword("variable", "signal", "input", "output"):
            decls.append(self._declaration())

        initial: Optional[str] = None
        if self._accept(TokenKind.KEYWORD, "initial"):
            initial = self._expect(TokenKind.IDENT).text
            self._symbol(";")

        transitions: List[Transition] = []
        if self._accept(TokenKind.KEYWORD, "transitions"):
            while self._current.kind is TokenKind.IDENT:
                transitions.append(self._transition())

        subs: List[Behavior] = []
        while self._at_keyword("behavior"):
            subs.append(self._behavior())
        self._keyword("end")
        self._keyword("behavior")
        self._symbol(";")
        composite = CompositeBehavior(
            name, subs, mode=mode, transitions=transitions, initial=initial,
            decls=decls,
        )
        composite.daemon = daemon
        return composite

    def _transition(self) -> Transition:
        source = self._expect(TokenKind.IDENT).text
        condition: Optional[Expr] = None
        if self._accept(TokenKind.SYMBOL, ":"):
            self._symbol("(")
            condition = self._expression()
            self._symbol(")")
        self._symbol("->")
        if self._accept(TokenKind.KEYWORD, "complete"):
            target: Optional[str] = None
        else:
            target = self._expect(TokenKind.IDENT).text
        self._symbol(";")
        return Transition(source, condition, target)

    # -- statements --------------------------------------------------------------------------

    _STMT_TERMINATORS = ("end", "elsif", "else")

    def _statements_until(self, stop_keywords: Tuple[str, ...]) -> tuple:
        stmts: List[Stmt] = []
        while not self._at_keyword(*stop_keywords):
            if self._current.kind is TokenKind.EOF:
                raise self._error(f"expected one of {stop_keywords}")
            stmts.append(self._statement())
        return make_body(stmts)

    def _statement(self) -> Stmt:
        if self._accept(TokenKind.KEYWORD, "null"):
            self._symbol(";")
            return Null()
        if self._at_keyword("if"):
            return self._if_statement()
        if self._at_keyword("while"):
            return self._while_statement()
        if self._at_keyword("for"):
            return self._for_statement()
        if self._at_keyword("wait"):
            return self._wait_statement()
        return self._simple_statement()

    def _if_statement(self) -> If:
        self._keyword("if")
        cond = self._expression()
        self._keyword("then")
        then_body = self._statements_until(self._STMT_TERMINATORS)
        elifs: List[Tuple[Expr, tuple]] = []
        while self._accept(TokenKind.KEYWORD, "elsif"):
            arm_cond = self._expression()
            self._keyword("then")
            arm_body = self._statements_until(self._STMT_TERMINATORS)
            elifs.append((arm_cond, arm_body))
        else_body: tuple = ()
        if self._accept(TokenKind.KEYWORD, "else"):
            else_body = self._statements_until(("end",))
        self._keyword("end")
        self._keyword("if")
        self._symbol(";")
        return If(cond, then_body, tuple(elifs), else_body)

    def _while_statement(self) -> While:
        self._keyword("while")
        cond = self._expression()
        expected: Optional[int] = None
        if self._accept(TokenKind.KEYWORD, "expect"):
            expected = self._expect(TokenKind.INT).value
        self._keyword("loop")
        loop_body = self._statements_until(("end",))
        self._keyword("end")
        self._keyword("loop")
        self._symbol(";")
        return While(cond, loop_body, expected_iterations=expected)

    def _for_statement(self) -> For:
        self._keyword("for")
        variable = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.IDENT, "in")
        start = self._expression()
        self._keyword("to")
        stop = self._expression()
        self._keyword("loop")
        loop_body = self._statements_until(("end",))
        self._keyword("end")
        self._keyword("loop")
        self._symbol(";")
        return For(variable, start, stop, loop_body)

    def _wait_statement(self) -> Wait:
        self._keyword("wait")
        if self._accept(TokenKind.KEYWORD, "until"):
            cond = self._expression()
            self._symbol(";")
            return Wait(until=cond)
        if self._accept(TokenKind.IDENT, "on"):
            names = [self._expect(TokenKind.IDENT).text]
            while self._accept(TokenKind.SYMBOL, ","):
                names.append(self._expect(TokenKind.IDENT).text)
            self._symbol(";")
            return Wait(on=tuple(names))
        self._keyword("for")
        delay = self._expect(TokenKind.INT).value
        self._symbol(";")
        return Wait(delay=delay)

    def _simple_statement(self) -> Stmt:
        name = self._expect(TokenKind.IDENT)
        # call statement: IDENT '(' ... ') ;'
        if self._current.matches(TokenKind.SYMBOL, "("):
            self._advance()
            args: List[Expr] = []
            if not self._current.matches(TokenKind.SYMBOL, ")"):
                args.append(self._expression())
                while self._accept(TokenKind.SYMBOL, ","):
                    args.append(self._expression())
            self._symbol(")")
            self._symbol(";")
            return CallStmt(name.text, tuple(args))
        # assignment: lvalue (':='|'<=') expr ';'
        target: Expr = VarRef(name.text)
        if self._accept(TokenKind.SYMBOL, "["):
            index = self._expression()
            self._symbol("]")
            target = Index(target, index)
        if self._accept(TokenKind.SYMBOL, ":="):
            value = self._expression()
            self._symbol(";")
            return Assign(target, value)
        if self._accept(TokenKind.SYMBOL, "<="):
            value = self._expression()
            self._symbol(";")
            return SignalAssign(target, value)
        raise self._error("expected ':=', '<=' or '(' after identifier")

    # -- expressions ------------------------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept(TokenKind.KEYWORD, "or"):
            left = BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._comparison()
        while self._accept(TokenKind.KEYWORD, "and"):
            left = BinOp("and", left, self._comparison())
        return left

    _COMPARISONS = ("=", "/=", "<", "<=", ">", ">=")

    def _comparison(self) -> Expr:
        left = self._additive()
        if (
            self._current.kind is TokenKind.SYMBOL
            and self._current.text in self._COMPARISONS
        ):
            op = self._advance().text
            return BinOp(op, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while (
            self._current.kind is TokenKind.SYMBOL
            and self._current.text in ("+", "-")
        ):
            op = self._advance().text
            left = BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while (
            self._current.matches(TokenKind.SYMBOL, "*")
            or self._current.matches(TokenKind.SYMBOL, "/")
            or self._current.matches(TokenKind.KEYWORD, "mod")
        ):
            op = self._advance().text
            left = BinOp(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self._accept(TokenKind.SYMBOL, "-"):
            token = self._accept(TokenKind.INT)
            if token is not None:
                # fold '- INT' into a negative literal so that printing
                # and re-parsing a negative Const is the identity
                return Const(-token.value)
            return UnaryOp("-", self._unary())
        if self._accept(TokenKind.KEYWORD, "not"):
            return UnaryOp("not", self._unary())
        if self._accept(TokenKind.KEYWORD, "abs"):
            return UnaryOp("abs", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        if self._accept(TokenKind.KEYWORD, "true"):
            return Const(True)
        if self._accept(TokenKind.KEYWORD, "false"):
            return Const(False)
        token = self._accept(TokenKind.INT)
        if token is not None:
            return Const(token.value)
        token = self._accept(TokenKind.CHAR)
        if token is not None:
            return Const(token.text)
        token = self._accept(TokenKind.IDENT)
        if token is not None:
            expr: Expr = VarRef(token.text)
            while self._accept(TokenKind.SYMBOL, "["):
                index = self._expression()
                self._symbol("]")
                expr = Index(expr, index)
            return expr
        if self._accept(TokenKind.SYMBOL, "("):
            expr = self._expression()
            if self._current.matches(TokenKind.SYMBOL, ","):
                items = [self._aggregate_element(expr)]
                while self._accept(TokenKind.SYMBOL, ","):
                    items.append(self._aggregate_element(self._expression()))
                self._symbol(")")
                return Const(tuple(items))
            self._symbol(")")
            return expr
        raise self._error("expected an expression")

    def _aggregate_element(self, expr: Expr):
        """Fold one element of an aggregate literal ``(e1, e2, ...)``
        down to its constant value (the printer only ever emits
        literal elements)."""
        if isinstance(expr, Const):
            return expr.value
        if (
            isinstance(expr, UnaryOp)
            and expr.op == "-"
            and isinstance(expr.operand, Const)
            and isinstance(expr.operand.value, int)
            and not isinstance(expr.operand.value, bool)
        ):
            return -expr.operand.value
        raise self._error("aggregate elements must be literals")
