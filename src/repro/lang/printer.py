"""Pretty-printer: IR -> textual SpecCharts-like source.

The printed form is the library's concrete syntax: it is what
:mod:`repro.lang.parser` parses back (round-trip tested), and its line
count is the specification-size metric of the paper's Figure 10
("# lines in the refined specification").

Layout rules are deterministic — two-space indentation, one declaration
or statement per line — so sizes are comparable across refinements.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.errors import SpecError
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.expr import COMPARISON_OPS, BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Subprogram
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    DataType,
    EnumType,
    IntType,
)
from repro.spec.variable import Role, Variable

__all__ = [
    "print_specification",
    "print_specification_with_map",
    "print_expr",
    "print_behavior",
    "print_type",
    "LineRecord",
    "LineMap",
]

_INDENT = "  "


# -- line map -----------------------------------------------------------------


class LineRecord(NamedTuple):
    """Attribution of one printed source line.

    ``node`` is the most specific IR object the line renders (a
    statement, declaration, behavior, subprogram or transition — or
    ``None`` for blanks); ``owner`` is the enclosing behavior or
    subprogram, if any.
    """

    line_no: int
    text: str
    kind: str
    node: object
    owner: object


class LineMap:
    """line number (1-based) -> :class:`LineRecord` for one rendering."""

    def __init__(self, records: List[LineRecord]):
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def record(self, line_no: int) -> LineRecord:
        if not 1 <= line_no <= len(self.records):
            raise SpecError(
                f"line {line_no} out of range (1..{len(self.records)})"
            )
        return self.records[line_no - 1]


class _Sink(list):
    """Plain output target: a list of lines with no-op attribution."""

    def mark(self, node, kind: str) -> None:
        pass

    def push_owner(self, owner) -> None:
        pass

    def pop_owner(self) -> None:
        pass


class _MapSink(_Sink):
    """Output target that records per-line attribution as it appends."""

    def __init__(self):
        super().__init__()
        self._node = None
        self._kind = "text"
        self._owners: List[object] = []
        #: (node, kind, owner) parallel to the line list
        self.marks: List[Tuple[object, str, object]] = []

    def mark(self, node, kind: str) -> None:
        self._node = node
        self._kind = kind

    def push_owner(self, owner) -> None:
        self._owners.append(owner)

    def pop_owner(self) -> None:
        self._owners.pop()

    def append(self, text: str) -> None:
        super().append(text)
        owner = self._owners[-1] if self._owners else None
        if not text.strip():
            self.marks.append((None, "blank", owner))
        else:
            self.marks.append((self._node, self._kind, owner))

    def line_map(self) -> LineMap:
        records = [
            LineRecord(i + 1, text, kind, node, owner)
            for i, (text, (node, kind, owner)) in enumerate(zip(self, self.marks))
        ]
        return LineMap(records)


# -- expressions --------------------------------------------------------------

#: Binding strength per operator, loosest first (VHDL-flavoured).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3,
    "/=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "mod": 5,
}


def print_expr(expr: Expr) -> str:
    """Render an expression with minimal parentheses."""
    return _expr(expr, 0)


def _fold_negation(expr: Expr) -> Expr:
    """Collapse negation chains over non-negative integer literals:
    ``-(c)`` becomes the literal ``-c`` and ``-(-0)`` becomes ``0``.
    The parser folds ``- INT`` the same way, so without this a printed
    negation of a literal would re-parse to a different tree ('-0' in
    particular must print as '0' to re-parse stably)."""
    if not (isinstance(expr, UnaryOp) and expr.op == "-"):
        return expr
    operand = _fold_negation(expr.operand)
    if (
        isinstance(operand, Const)
        and isinstance(operand.value, int)
        and not isinstance(operand.value, bool)
        and operand.value >= 0
    ):
        return Const(-operand.value)
    if operand is not expr.operand:
        return UnaryOp("-", operand)
    return expr


def _expr(expr: Expr, parent_level: int) -> str:
    if isinstance(expr, Const):
        text = _literal(expr.value)
        if (
            isinstance(expr.value, int)
            and not isinstance(expr.value, bool)
            and expr.value < 0
        ):
            # a negative literal binds like a unary minus: '-(-12)' and
            # 'abs (-17)' need the parentheses ('--12' would lex as a
            # comment, 'abs -17' re-parses as abs applied to a unary op)
            return f"({text})" if parent_level > 6 else text
        return text
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Index):
        return f"{_expr(expr.base, 99)}[{_expr(expr.index_expr, 0)}]"
    if isinstance(expr, UnaryOp):
        folded = _fold_negation(expr)
        if not isinstance(folded, UnaryOp):
            return _expr(folded, parent_level)
        expr = folded
        # operand at level 7 so a nested unary/binary is parenthesised;
        # '-(-x)' in particular must never print as '--x' (a comment)
        inner = _expr(expr.operand, 7)
        text = f"{expr.op} {inner}" if expr.op.isalpha() else f"{expr.op}{inner}"
        return f"({text})" if parent_level > 6 else text
    if isinstance(expr, BinOp):
        level = _PRECEDENCE[expr.op]
        # comparisons are non-associative in the grammar, so a comparison
        # operand of a comparison needs parentheses on both sides; for
        # associative operators only the right side does (preserves the
        # IR's left-associative tree)
        left_level = level + 1 if expr.op in COMPARISON_OPS else level
        left = _expr(expr.left, left_level)
        right = _expr(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_level > level else text
    raise SpecError(f"cannot print expression {expr!r}")


def _literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, tuple):
        return "(" + ", ".join(_literal(v) for v in value) + ")"
    raise SpecError(f"cannot print literal {value!r}")


# -- types ---------------------------------------------------------------------


def print_type(dtype: DataType) -> str:
    """Render a type in the concrete syntax."""
    if isinstance(dtype, BoolType):
        return "boolean"
    if isinstance(dtype, IntType):
        keyword = "integer" if dtype.signed else "natural"
        return f"{keyword}<{dtype.width}>"
    if isinstance(dtype, BitVectorType):
        return f"bits<{dtype.width}>"
    if isinstance(dtype, ArrayType):
        return f"array<{print_type(dtype.element)}, {dtype.length}>"
    if isinstance(dtype, EnumType):
        return dtype.name
    raise SpecError(f"cannot print type {dtype!r}")


# -- declarations ---------------------------------------------------------------


def _decl_line(var: Variable) -> str:
    role = ""
    if var.role is Role.INPUT:
        role = "input "
    elif var.role is Role.OUTPUT:
        role = "output "
    keyword = "signal" if var.is_signal else "variable"
    line = f"{role}{keyword} {var.name} : {print_type(var.dtype)}"
    if var.init is not None:
        line += f" := {_literal(var.init)}"
    line += ";"
    if var.doc:
        line += f"  -- {var.doc}"
    return line


# -- statements -------------------------------------------------------------------


def _emit_body(lines: _Sink, stmts: Body, depth: int) -> None:
    if not stmts:
        lines.append(_INDENT * depth + "null;")
        return
    for stmt in stmts:
        _emit_stmt(lines, stmt, depth)


def _emit_stmt(lines: _Sink, stmt: Stmt, depth: int) -> None:
    pad = _INDENT * depth
    lines.mark(stmt, "stmt")
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{print_expr(stmt.target)} := {print_expr(stmt.value)};")
    elif isinstance(stmt, SignalAssign):
        lines.append(f"{pad}{print_expr(stmt.target)} <= {print_expr(stmt.value)};")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if {print_expr(stmt.cond)} then")
        _emit_body(lines, stmt.then_body, depth + 1)
        for cond, arm in stmt.elifs:
            lines.mark(stmt, "stmt")
            lines.append(f"{pad}elsif {print_expr(cond)} then")
            _emit_body(lines, arm, depth + 1)
        if stmt.else_body:
            lines.mark(stmt, "stmt")
            lines.append(f"{pad}else")
            _emit_body(lines, stmt.else_body, depth + 1)
        lines.mark(stmt, "stmt")
        lines.append(f"{pad}end if;")
    elif isinstance(stmt, While):
        expect = (
            f" expect {stmt.expected_iterations}"
            if stmt.expected_iterations is not None
            else ""
        )
        lines.append(f"{pad}while {print_expr(stmt.cond)}{expect} loop")
        _emit_body(lines, stmt.loop_body, depth + 1)
        lines.mark(stmt, "stmt")
        lines.append(f"{pad}end loop;")
    elif isinstance(stmt, For):
        lines.append(
            f"{pad}for {stmt.variable} in {print_expr(stmt.start)} "
            f"to {print_expr(stmt.stop)} loop"
        )
        _emit_body(lines, stmt.loop_body, depth + 1)
        lines.mark(stmt, "stmt")
        lines.append(f"{pad}end loop;")
    elif isinstance(stmt, Wait):
        if stmt.until is not None:
            lines.append(f"{pad}wait until {print_expr(stmt.until)};")
        elif stmt.on:
            lines.append(f"{pad}wait on {', '.join(stmt.on)};")
        else:
            lines.append(f"{pad}wait for {stmt.delay};")
    elif isinstance(stmt, CallStmt):
        args = ", ".join(print_expr(a) for a in stmt.args)
        lines.append(f"{pad}{stmt.callee}({args});")
    elif isinstance(stmt, Null):
        lines.append(f"{pad}null;")
    else:
        raise SpecError(f"cannot print statement {stmt!r}")


# -- behaviors ----------------------------------------------------------------------


def print_behavior(behavior: Behavior, depth: int = 0) -> str:
    """Render one behavior subtree."""
    lines = _Sink()
    _emit_behavior(lines, behavior, depth)
    return "\n".join(lines)


def _emit_behavior(lines: _Sink, behavior: Behavior, depth: int) -> None:
    pad = _INDENT * depth
    daemon = "daemon " if behavior.daemon else ""
    lines.push_owner(behavior)
    lines.mark(behavior, "behavior")
    if isinstance(behavior, LeafBehavior):
        lines.append(f"{pad}behavior {behavior.name} is {daemon}leaf")
        for decl in behavior.decls:
            lines.mark(decl, "decl")
            lines.append(_INDENT * (depth + 1) + _decl_line(decl))
        lines.mark(behavior, "behavior")
        lines.append(f"{pad}begin")
        _emit_body(lines, behavior.stmt_body, depth + 1)
        lines.mark(behavior, "behavior")
        lines.append(f"{pad}end behavior;")
        lines.pop_owner()
        return
    if not isinstance(behavior, CompositeBehavior):
        raise SpecError(f"cannot print behavior {behavior!r}")
    mode = "sequential" if behavior.is_sequential else "concurrent"
    lines.append(f"{pad}behavior {behavior.name} is {daemon}{mode}")
    inner = depth + 1
    for decl in behavior.decls:
        lines.mark(decl, "decl")
        lines.append(_INDENT * inner + _decl_line(decl))
    if behavior.is_sequential and behavior.initial != behavior.subs[0].name:
        lines.mark(behavior, "behavior")
        lines.append(_INDENT * inner + f"initial {behavior.initial};")
    if behavior.transitions:
        lines.mark(behavior, "behavior")
        lines.append(_INDENT * inner + "transitions")
        for t in behavior.transitions:
            target = t.target if t.target is not None else "complete"
            if t.condition is not None:
                arc = f"{t.source} : ({print_expr(t.condition)}) -> {target};"
            else:
                arc = f"{t.source} -> {target};"
            lines.mark(t, "transition")
            lines.append(_INDENT * (inner + 1) + arc)
    for sub in behavior.subs:
        _emit_behavior(lines, sub, inner)
    lines.mark(behavior, "behavior")
    lines.append(f"{pad}end behavior;")
    lines.pop_owner()


# -- subprograms ----------------------------------------------------------------------


def _emit_subprogram(lines: _Sink, sub: Subprogram, depth: int) -> None:
    pad = _INDENT * depth
    params = ", ".join(
        f"{p.name} : {p.direction.value} {print_type(p.dtype)}" for p in sub.params
    )
    lines.push_owner(sub)
    lines.mark(sub, "subprogram")
    lines.append(f"{pad}procedure {sub.name}({params}) is")
    for decl in sub.decls:
        lines.mark(decl, "decl")
        lines.append(_INDENT * (depth + 1) + _decl_line(decl))
    lines.mark(sub, "subprogram")
    lines.append(f"{pad}begin")
    _emit_body(lines, sub.stmt_body, depth + 1)
    lines.mark(sub, "subprogram")
    lines.append(f"{pad}end procedure;")
    lines.pop_owner()


# -- specifications ----------------------------------------------------------------------


def print_specification(spec: Specification) -> str:
    """Render the whole specification as source text."""
    return _print_specification(spec, _Sink())


def print_specification_with_map(spec: Specification) -> Tuple[str, LineMap]:
    """Render a specification *and* attribute every line to the IR node
    it prints — the substrate of ``repro explain``.  The text is
    byte-identical to :func:`print_specification`."""
    sink = _MapSink()
    text = _print_specification(spec, sink)
    return text, sink.line_map()


def _print_specification(spec: Specification, lines: _Sink) -> str:
    lines.mark(spec, "spec")
    if spec.doc:
        for doc_line in spec.doc.strip().splitlines():
            lines.append(f"-- {doc_line.strip()}")
    lines.append(f"specification {spec.name} is")

    enums = _collect_enums(spec)
    for enum in enums:
        literals = ", ".join(f"'{lit}'" for lit in enum.literals)
        lines.mark(enum, "type")
        lines.append(_INDENT + f"type {enum.name} is ({literals});")

    for var in spec.variables:
        lines.mark(var, "decl")
        lines.append(_INDENT + _decl_line(var))
    if spec.variables or enums:
        lines.append("")
    for sub in spec.subprograms.values():
        _emit_subprogram(lines, sub, 1)
        lines.append("")
    _emit_behavior(lines, spec.top, 1)
    lines.mark(spec, "spec")
    lines.append("end specification;")
    return "\n".join(lines) + "\n"


def _collect_enums(spec: Specification) -> List[EnumType]:
    """Every distinct enum type used anywhere in the specification,
    in first-seen order (they need a type declaration in the text)."""
    seen: dict = {}

    def visit(dtype: DataType) -> None:
        if isinstance(dtype, EnumType) and dtype.name not in seen:
            seen[dtype.name] = dtype
        elif isinstance(dtype, ArrayType):
            visit(dtype.element)

    for _, var in spec.all_declared_variables():
        visit(var.dtype)
    for sub in spec.subprograms.values():
        for param in sub.params:
            visit(param.dtype)
        for decl in sub.decls:
            visit(decl.dtype)
    return list(seen.values())
