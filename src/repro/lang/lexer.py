"""Hand-written lexer for the SpecCharts-like concrete syntax.

Comments run from ``--`` to end of line (VHDL style).  Identifiers are
case-sensitive; keywords are recognised case-insensitively and
canonicalised to lowercase.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_SYMBOLS,
    SINGLE_SYMBOLS,
    Token,
    TokenKind,
)

__all__ = ["tokenize"]


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with one EOF token.

    Raises :class:`ParseError` on any character outside the language.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while i < length:
        ch = source[i]

        # -- whitespace ----------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments --------------------------------------------------------
        if ch == "-" and i + 1 < length and source[i + 1] == "-":
            while i < length and source[i] != "\n":
                i += 1
            continue

        start_col = column

        # -- identifiers / keywords -------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            if text.lower() in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, text.lower(), line, start_col))
            else:
                tokens.append(Token(TokenKind.IDENT, text, line, start_col))
            column += j - i
            i = j
            continue

        # -- integers -----------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < length and source[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.INT, source[i:j], line, start_col))
            column += j - i
            i = j
            continue

        # -- character/enum literals ----------------------------------------------
        if ch == "'":
            # a literal never spans lines: searching past the newline
            # would silently desynchronise line/column tracking for
            # every later token, so an unclosed quote is an error here,
            # reported at the opening quote (the token's start)
            newline = source.find("\n", i + 1)
            line_end = newline if newline >= 0 else length
            j = source.find("'", i + 1, line_end)
            if j < 0:
                raise error("unterminated character literal")
            text = source[i + 1 : j]
            if not text:
                raise error("empty character literal")
            tokens.append(Token(TokenKind.CHAR, text, line, start_col))
            column += (j + 1) - i
            i = j + 1
            continue

        # -- symbols --------------------------------------------------------------
        matched = False
        for sym in MULTI_SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token(TokenKind.SYMBOL, sym, line, start_col))
                i += len(sym)
                column += len(sym)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_SYMBOLS:
            tokens.append(Token(TokenKind.SYMBOL, ch, line, start_col))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
