"""Token definitions for the SpecCharts-like concrete syntax."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    INT = "int"
    CHAR = "char"  # 'literal' — enum literals
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


#: Reserved words of the language.  Identifiers may not collide with
#: these; the lexer classifies them case-insensitively (keywords are
#: canonicalised to lowercase).
KEYWORDS = frozenset(
    {
        "specification",
        "is",
        "end",
        "variable",
        "signal",
        "input",
        "output",
        "type",
        "procedure",
        "begin",
        "behavior",
        "daemon",
        "leaf",
        "sequential",
        "concurrent",
        "transitions",
        "initial",
        "complete",
        "if",
        "then",
        "elsif",
        "else",
        "while",
        "expect",
        "loop",
        "for",
        "to",
        "wait",
        "until",
        "null",
        "and",
        "or",
        "not",
        "abs",
        "mod",
        "true",
        "false",
        "integer",
        "natural",
        "bits",
        "boolean",
        "array",
    }
)

#: Multi-character symbols, longest first so the lexer can match greedily.
MULTI_SYMBOLS = (":=", "<=", ">=", "/=", "->")

#: Single-character symbols.
SINGLE_SYMBOLS = "()[]<>:;,+-*/="


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def value(self) -> int:
        """Integer value of an INT token."""
        return int(self.text)

    def matches(self, kind: TokenKind, text: str = None) -> bool:
        """Whether this token has the given kind (and text, if given)."""
        return self.kind is kind and (text is None or self.text == text)

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of input>"
        return repr(self.text)
