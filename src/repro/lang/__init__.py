"""Textual SpecCharts-like front end: lexer, parser and pretty-printer."""

from repro.lang.lexer import tokenize
from repro.lang.parser import parse, parse_expression
from repro.lang.printer import print_behavior, print_expr, print_specification

__all__ = [
    "tokenize",
    "parse",
    "parse_expression",
    "print_behavior",
    "print_expr",
    "print_specification",
]
