"""Allocation: the set of system components available to a design.

The paper's Figure 1(b) allocates "an ASIC of size 10,000 gates and 75
pins, a processor of type Intel8086 and some buses".  An
:class:`Allocation` carries exactly that — the execution components a
partition may map to — plus defaults so a partition over unknown
component names still refines (every unknown name becomes a default
ASIC, which keeps small examples terse).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.arch.components import Component, ComponentKind, asic, processor
from repro.errors import AllocationError

__all__ = ["Allocation", "default_allocation_for"]

#: Component-name prefixes that default to processors.
_PROCESSOR_PREFIXES = ("proc", "cpu", "sw", "p86")


class Allocation:
    """A named set of execution components."""

    def __init__(self, components: Iterable[Component] = (), name: str = "allocation"):
        self.name = name
        self.components: Dict[str, Component] = {}
        for component in components:
            self.add(component)

    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise AllocationError(
                f"{self.name}: duplicate component {component.name!r}"
            )
        self.components[component.name] = component
        return component

    def get(self, name: str) -> Component:
        component = self.components.get(name)
        if component is None:
            raise AllocationError(f"{self.name}: unknown component {name!r}")
        return component

    def has(self, name: str) -> bool:
        return name in self.components

    def processors(self) -> List[Component]:
        return [
            c
            for c in self.components.values()
            if c.kind is ComponentKind.PROCESSOR
        ]

    def asics(self) -> List[Component]:
        return [c for c in self.components.values() if c.kind is ComponentKind.ASIC]

    def ensure(self, names: Iterable[str]) -> "Allocation":
        """Return an allocation covering all ``names``, inventing default
        components for any that are missing (processors for ``PROC``-like
        names, ASICs otherwise)."""
        out = Allocation(self.components.values(), name=self.name)
        for name in names:
            if not out.has(name):
                out.add(_default_component(name))
        return out

    def __len__(self) -> int:
        return len(self.components)

    def __repr__(self) -> str:
        return f"<Allocation {self.name!r}: {sorted(self.components)}>"


def _default_component(name: str) -> Component:
    lowered = name.lower()
    if any(lowered.startswith(prefix) for prefix in _PROCESSOR_PREFIXES):
        return processor(name)
    return asic(name)


def default_allocation_for(component_names: Iterable[str]) -> Allocation:
    """The allocation used when the caller supplies none: one default
    component per partition component name."""
    return Allocation(name="default").ensure(component_names)
