"""Architecture components, allocation and bus protocols."""

from repro.arch.allocation import Allocation, default_allocation_for
from repro.arch.components import (
    ArbiterInst,
    BusInterfaceInst,
    BusNet,
    Component,
    ComponentKind,
    MemoryKind,
    MemoryModule,
    MemoryPort,
    Netlist,
    asic,
    processor,
)
from repro.arch.protocols import (
    PROTOCOLS,
    HandshakeProtocol,
    Protocol,
    StrobeProtocol,
    bus_signal_names,
    bus_signals,
    resolve_protocol,
)

__all__ = [
    "Allocation",
    "default_allocation_for",
    "ArbiterInst",
    "BusInterfaceInst",
    "BusNet",
    "Component",
    "ComponentKind",
    "MemoryKind",
    "MemoryModule",
    "MemoryPort",
    "Netlist",
    "asic",
    "processor",
    "PROTOCOLS",
    "HandshakeProtocol",
    "Protocol",
    "StrobeProtocol",
    "bus_signal_names",
    "bus_signals",
    "resolve_protocol",
]
