"""Bus protocol library.

Data-related refinement "substitutes the read and write operations of
the variable with receive/send protocols" (paper §2) encapsulated in
the subroutines ``MST_send``, ``MST_receive``, ``SLV_send`` and
``SLV_receive`` (Figure 5d).  A :class:`Protocol` generates those four
subroutines for a concrete bus; "when selecting a different bus
protocol, the content in the subroutines will change correspondingly"
— so each protocol is just a different subprogram-body generator, and
the rest of the refiner is protocol-agnostic.

Two protocols are provided:

* :class:`HandshakeProtocol` — the paper's four-phase fully-interlocked
  handshake of Figure 5d (control lines ``start``/``done``/``rd``/``wr``
  plus address and data buses);
* :class:`StrobeProtocol` — a two-phase timed strobe without the
  ``done`` acknowledge, trading robustness for fewer bus-level
  transfers (the protocol-choice ablation).

Naming: for a bus ``b2`` the subroutines are ``MST_send_b2`` etc., and
its signal bundle is ``b2_start``, ``b2_done``, ``b2_rd``, ``b2_wr``,
``b2_addr``, ``b2_data``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.components import BusNet
from repro.errors import RefinementError
from repro.spec.builder import (
    assign,
    sassign,
    wait_for,
    wait_until,
)
from repro.spec.expr import var
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BIT, bits, int_type
from repro.spec.variable import Variable, signal

__all__ = [
    "bus_signal_names",
    "bus_signals",
    "Protocol",
    "HandshakeProtocol",
    "StrobeProtocol",
    "PROTOCOLS",
    "resolve_protocol",
    "master_send_name",
    "master_receive_name",
    "slave_send_name",
    "slave_receive_name",
]


def bus_signal_names(bus_name: str) -> Dict[str, str]:
    """The canonical signal names of a bus's bundle."""
    return {
        "start": f"{bus_name}_start",
        "done": f"{bus_name}_done",
        "rd": f"{bus_name}_rd",
        "wr": f"{bus_name}_wr",
        "addr": f"{bus_name}_addr",
        "data": f"{bus_name}_data",
    }


def bus_signals(bus: BusNet) -> List[Variable]:
    """Signal declarations for a bus's bundle.

    The data bus carries integer values (signed, ``data_width`` bits)
    so refined transfers preserve the original variables' values
    exactly; the address bus is an unsigned vector.
    """
    names = bus_signal_names(bus.name)
    return [
        signal(names["start"], BIT, init=0, doc=f"{bus.name} transfer strobe"),
        signal(names["done"], BIT, init=0, doc=f"{bus.name} slave acknowledge"),
        signal(names["rd"], BIT, init=0, doc=f"{bus.name} read request"),
        signal(names["wr"], BIT, init=0, doc=f"{bus.name} write request"),
        signal(
            names["addr"],
            bits(max(1, bus.addr_width)),
            init=0,
            doc=f"{bus.name} address bus",
        ),
        signal(
            names["data"],
            int_type(max(2, bus.data_width)),
            init=0,
            doc=f"{bus.name} data bus",
        ),
    ]


def master_send_name(bus_name: str) -> str:
    return f"MST_send_{bus_name}"


def master_receive_name(bus_name: str) -> str:
    return f"MST_receive_{bus_name}"


def slave_send_name(bus_name: str) -> str:
    return f"SLV_send_{bus_name}"


def slave_receive_name(bus_name: str) -> str:
    return f"SLV_receive_{bus_name}"


class Protocol:
    """Generator of the four protocol subroutines for one bus."""

    #: Registry key and the ``BusNet.protocol`` tag.
    name: str = "abstract"

    #: Bus-level transfers one word transaction costs (drives the bus
    #: occupancy estimate and the cost model).
    cycles_per_transfer: int = 0

    #: Whether a slave may take unbounded time to respond (required for
    #: Model4's message passing, where the serving "slave" is a bus
    #: interface that forwards over further buses before answering).
    #: Timed protocols with a fixed response window cannot provide this.
    supports_multi_hop: bool = True

    def subprograms(self, bus: BusNet) -> List[Subprogram]:
        """All four subroutines for ``bus``."""
        return [
            self.master_send(bus),
            self.master_receive(bus),
            self.slave_send(bus),
            self.slave_receive(bus),
        ]

    def extra_signals(self, bus: BusNet) -> List[Variable]:
        """Additional bus lines this protocol needs beyond the standard
        bundle (declared by the refiner alongside the bundle).  The
        built-in protocols need none; custom protocols override this —
        e.g. a parity line per bus."""
        return []

    def master_send(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def master_receive(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def slave_send(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def slave_receive(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    # -- shared parameter shapes -----------------------------------------------

    def _addr_param(self, bus: BusNet) -> Param:
        return Param("addr", bits(max(1, bus.addr_width)), Direction.IN)

    def _data_in_param(self, bus: BusNet) -> Param:
        return Param("data", int_type(max(2, bus.data_width)), Direction.IN)

    def _data_out_param(self, bus: BusNet) -> Param:
        return Param("data", int_type(max(2, bus.data_width)), Direction.OUT)


class HandshakeProtocol(Protocol):
    """The paper's Figure 5d four-phase handshake.

    Write:  master drives addr/data, raises ``wr`` then ``start``;
    slave latches and raises ``done``; master drops ``start``/``wr``;
    slave drops ``done``.  Read is symmetric with the slave driving
    ``data`` before ``done``.
    """

    name = "handshake"
    cycles_per_transfer = 4

    def master_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_send_name(bus.name),
            params=[self._addr_param(bus), self._data_in_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["data"], var("data")),
                sassign(s["wr"], 1),
                sassign(s["start"], 1),
                wait_until(var(s["done"]).eq(1)),
                sassign(s["start"], 0),
                sassign(s["wr"], 0),
                wait_until(var(s["done"]).eq(0)),
            ],
            doc=f"write one word to a slave on {bus.name} (4-phase handshake)",
        )

    def master_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_receive_name(bus.name),
            params=[self._addr_param(bus), self._data_out_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["rd"], 1),
                sassign(s["start"], 1),
                wait_until(var(s["done"]).eq(1)),
                assign("data", var(s["data"])),
                sassign(s["start"], 0),
                sassign(s["rd"], 0),
                wait_until(var(s["done"]).eq(0)),
            ],
            doc=f"read one word from a slave on {bus.name} (4-phase handshake)",
        )

    def slave_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_send_name(bus.name),
            params=[self._data_in_param(bus)],
            stmt_body=[
                sassign(s["data"], var("data")),
                sassign(s["done"], 1),
                wait_until(var(s["start"]).eq(0)),
                sassign(s["done"], 0),
            ],
            doc=f"serve a read request on {bus.name}",
        )

    def slave_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_receive_name(bus.name),
            params=[self._data_out_param(bus)],
            stmt_body=[
                assign("data", var(s["data"])),
                sassign(s["done"], 1),
                wait_until(var(s["start"]).eq(0)),
                sassign(s["done"], 0),
            ],
            doc=f"serve a write request on {bus.name}",
        )


class StrobeProtocol(Protocol):
    """A two-phase timed strobe: no ``done`` acknowledge.

    The master holds ``start`` for a fixed window the slave is assumed
    to meet (slaves respond within delta cycles in this simulator).
    Fewer bus-level transfers per word than the handshake, but no
    protection against a slow slave — exactly the trade the
    protocol-selection experiment quantifies.
    """

    name = "strobe"
    cycles_per_transfer = 2
    #: a fixed hold window cannot wait for a bus interface that first
    #: forwards the request over further buses
    supports_multi_hop = False

    #: Time units the strobe is held; slaves must respond within this.
    strobe_hold = 2

    def master_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_send_name(bus.name),
            params=[self._addr_param(bus), self._data_in_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["data"], var("data")),
                sassign(s["wr"], 1),
                sassign(s["start"], 1),
                wait_for(self.strobe_hold),
                sassign(s["start"], 0),
                sassign(s["wr"], 0),
                wait_for(self.strobe_hold),
            ],
            doc=f"write one word to a slave on {bus.name} (timed strobe)",
        )

    def master_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_receive_name(bus.name),
            params=[self._addr_param(bus), self._data_out_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["rd"], 1),
                sassign(s["start"], 1),
                wait_for(self.strobe_hold),
                assign("data", var(s["data"])),
                sassign(s["start"], 0),
                sassign(s["rd"], 0),
                wait_for(self.strobe_hold),
            ],
            doc=f"read one word from a slave on {bus.name} (timed strobe)",
        )

    def slave_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_send_name(bus.name),
            params=[self._data_in_param(bus)],
            stmt_body=[
                sassign(s["data"], var("data")),
                wait_until(var(s["start"]).eq(0)),
            ],
            doc=f"serve a read request on {bus.name} (timed strobe)",
        )

    def slave_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_receive_name(bus.name),
            params=[self._data_out_param(bus)],
            stmt_body=[
                assign("data", var(s["data"])),
                wait_until(var(s["start"]).eq(0)),
            ],
            doc=f"serve a write request on {bus.name} (timed strobe)",
        )


#: Registry of available protocols by name.
PROTOCOLS: Dict[str, Protocol] = {
    HandshakeProtocol.name: HandshakeProtocol(),
    StrobeProtocol.name: StrobeProtocol(),
}


def resolve_protocol(protocol) -> Protocol:
    """Accept a :class:`Protocol` or its registry name."""
    if isinstance(protocol, Protocol):
        return protocol
    found = PROTOCOLS.get(protocol)
    if found is None:
        raise RefinementError(
            f"unknown protocol {protocol!r}; available: {sorted(PROTOCOLS)}"
        )
    return found
