"""Bus protocol library.

Data-related refinement "substitutes the read and write operations of
the variable with receive/send protocols" (paper §2) encapsulated in
the subroutines ``MST_send``, ``MST_receive``, ``SLV_send`` and
``SLV_receive`` (Figure 5d).  A :class:`Protocol` generates those four
subroutines for a concrete bus; "when selecting a different bus
protocol, the content in the subroutines will change correspondingly"
— so each protocol is just a different subprogram-body generator, and
the rest of the refiner is protocol-agnostic.

Three protocols are provided:

* :class:`HandshakeProtocol` — the paper's four-phase fully-interlocked
  handshake of Figure 5d (control lines ``start``/``done``/``rd``/``wr``
  plus address and data buses);
* :class:`StrobeProtocol` — a two-phase timed strobe without the
  ``done`` acknowledge, trading robustness for fewer bus-level
  transfers (the protocol-choice ablation);
* :class:`TimeoutHandshakeProtocol` — the opt-in *timeout-and-retry*
  variant of the handshake: masters bound every acknowledge wait by a
  tick budget, retry the transfer up to :class:`RecoveryPolicy` limits,
  and degrade gracefully by raising the bus's ``err`` line when retries
  are exhausted.  Refined specs built with it survive lost handshake
  edges instead of deadlocking (the robustness campaign's recovery
  path).

Naming: for a bus ``b2`` the subroutines are ``MST_send_b2`` etc., and
its signal bundle is ``b2_start``, ``b2_done``, ``b2_rd``, ``b2_wr``,
``b2_addr``, ``b2_data`` (plus ``b2_err`` for the timeout variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.components import BusNet
from repro.errors import RefinementError
from repro.spec.builder import (
    assign,
    if_,
    sassign,
    wait_for,
    wait_until,
    while_,
)
from repro.spec.expr import var
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BIT, bits, int_type
from repro.spec.variable import Variable, signal, variable

__all__ = [
    "bus_signal_names",
    "bus_error_name",
    "bus_signals",
    "RecoveryPolicy",
    "Protocol",
    "HandshakeProtocol",
    "StrobeProtocol",
    "TimeoutHandshakeProtocol",
    "PROTOCOLS",
    "resolve_protocol",
    "master_send_name",
    "master_receive_name",
    "slave_send_name",
    "slave_receive_name",
]


def bus_signal_names(bus_name: str) -> Dict[str, str]:
    """The canonical signal names of a bus's bundle."""
    return {
        "start": f"{bus_name}_start",
        "done": f"{bus_name}_done",
        "rd": f"{bus_name}_rd",
        "wr": f"{bus_name}_wr",
        "addr": f"{bus_name}_addr",
        "data": f"{bus_name}_data",
    }


def bus_signals(bus: BusNet) -> List[Variable]:
    """Signal declarations for a bus's bundle.

    The data bus carries integer values (signed, ``data_width`` bits)
    so refined transfers preserve the original variables' values
    exactly; the address bus is an unsigned vector.
    """
    names = bus_signal_names(bus.name)
    return [
        signal(names["start"], BIT, init=0, doc=f"{bus.name} transfer strobe"),
        signal(names["done"], BIT, init=0, doc=f"{bus.name} slave acknowledge"),
        signal(names["rd"], BIT, init=0, doc=f"{bus.name} read request"),
        signal(names["wr"], BIT, init=0, doc=f"{bus.name} write request"),
        signal(
            names["addr"],
            bits(max(1, bus.addr_width)),
            init=0,
            doc=f"{bus.name} address bus",
        ),
        signal(
            names["data"],
            int_type(max(2, bus.data_width)),
            init=0,
            doc=f"{bus.name} data bus",
        ),
    ]


def bus_error_name(bus_name: str) -> str:
    """The graceful-degradation error line of a recovery-capable bus."""
    return f"{bus_name}_err"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Timeout-and-retry parameters of a recovery-capable protocol.

    ``timeout_ticks`` bounds each acknowledge wait (in ``wait for 1``
    polling ticks); ``max_retries`` is how many times a timed-out
    transfer is re-attempted before the master gives up and raises the
    bus error line; ``backoff_ticks`` is the idle gap between attempts.
    ``grant_timeout_ticks`` bounds an arbitration grant wait — it must
    comfortably exceed the longest legitimate bus tenure (a Model4
    multi-hop transaction with retries), so it defaults to a generous
    multiple of the transfer timeout.
    """

    timeout_ticks: int = 16
    max_retries: int = 3
    backoff_ticks: int = 1

    @property
    def grant_timeout_ticks(self) -> int:
        return self.timeout_ticks * (self.max_retries + 1) * 8


def master_send_name(bus_name: str) -> str:
    return f"MST_send_{bus_name}"


def master_receive_name(bus_name: str) -> str:
    return f"MST_receive_{bus_name}"


def slave_send_name(bus_name: str) -> str:
    return f"SLV_send_{bus_name}"


def slave_receive_name(bus_name: str) -> str:
    return f"SLV_receive_{bus_name}"


class Protocol:
    """Generator of the four protocol subroutines for one bus."""

    #: Registry key and the ``BusNet.protocol`` tag.
    name: str = "abstract"

    #: Bus-level transfers one word transaction costs (drives the bus
    #: occupancy estimate and the cost model).
    cycles_per_transfer: int = 0

    #: Whether a slave may take unbounded time to respond (required for
    #: Model4's message passing, where the serving "slave" is a bus
    #: interface that forwards over further buses before answering).
    #: Timed protocols with a fixed response window cannot provide this.
    supports_multi_hop: bool = True

    #: Timeout-and-retry parameters, or ``None`` for protocols without
    #: recovery.  A non-None policy also makes the refiner emit bounded
    #: arbitration waits (emitter wrappers, arbiters) with the same
    #: graceful degradation.
    recovery: Optional[RecoveryPolicy] = None

    def subprograms(self, bus: BusNet) -> List[Subprogram]:
        """All four subroutines for ``bus``."""
        return [
            self.master_send(bus),
            self.master_receive(bus),
            self.slave_send(bus),
            self.slave_receive(bus),
        ]

    def extra_signals(self, bus: BusNet) -> List[Variable]:
        """Additional bus lines this protocol needs beyond the standard
        bundle (declared by the refiner alongside the bundle).  The
        built-in protocols need none; custom protocols override this —
        e.g. a parity line per bus."""
        return []

    def master_send(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def master_receive(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def slave_send(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    def slave_receive(self, bus: BusNet) -> Subprogram:
        raise NotImplementedError

    # -- shared parameter shapes -----------------------------------------------

    def _addr_param(self, bus: BusNet) -> Param:
        return Param("addr", bits(max(1, bus.addr_width)), Direction.IN)

    def _data_in_param(self, bus: BusNet) -> Param:
        return Param("data", int_type(max(2, bus.data_width)), Direction.IN)

    def _data_out_param(self, bus: BusNet) -> Param:
        return Param("data", int_type(max(2, bus.data_width)), Direction.OUT)


class HandshakeProtocol(Protocol):
    """The paper's Figure 5d four-phase handshake.

    Write:  master drives addr/data, raises ``wr`` then ``start``;
    slave latches and raises ``done``; master drops ``start``/``wr``;
    slave drops ``done``.  Read is symmetric with the slave driving
    ``data`` before ``done``.
    """

    name = "handshake"
    cycles_per_transfer = 4

    def master_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_send_name(bus.name),
            params=[self._addr_param(bus), self._data_in_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["data"], var("data")),
                sassign(s["wr"], 1),
                sassign(s["start"], 1),
                wait_until(var(s["done"]).eq(1)),
                sassign(s["start"], 0),
                sassign(s["wr"], 0),
                wait_until(var(s["done"]).eq(0)),
            ],
            doc=f"write one word to a slave on {bus.name} (4-phase handshake)",
        )

    def master_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_receive_name(bus.name),
            params=[self._addr_param(bus), self._data_out_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["rd"], 1),
                sassign(s["start"], 1),
                wait_until(var(s["done"]).eq(1)),
                assign("data", var(s["data"])),
                sassign(s["start"], 0),
                sassign(s["rd"], 0),
                wait_until(var(s["done"]).eq(0)),
            ],
            doc=f"read one word from a slave on {bus.name} (4-phase handshake)",
        )

    def slave_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_send_name(bus.name),
            params=[self._data_in_param(bus)],
            stmt_body=[
                sassign(s["data"], var("data")),
                sassign(s["done"], 1),
                wait_until(var(s["start"]).eq(0)),
                sassign(s["done"], 0),
            ],
            doc=f"serve a read request on {bus.name}",
        )

    def slave_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_receive_name(bus.name),
            params=[self._data_out_param(bus)],
            stmt_body=[
                assign("data", var(s["data"])),
                sassign(s["done"], 1),
                wait_until(var(s["start"]).eq(0)),
                sassign(s["done"], 0),
            ],
            doc=f"serve a write request on {bus.name}",
        )


class TimeoutHandshakeProtocol(HandshakeProtocol):
    """The handshake of Figure 5d with timeout-and-retry masters.

    The slave side is the plain handshake (an endless server loses
    nothing by waiting), but every master-side acknowledge wait is
    bounded: the master polls ``done`` for ``timeout_ticks`` one-unit
    waits, aborts and re-drives the transfer up to ``max_retries``
    times, and finally degrades gracefully — it raises the bus's
    ``err`` line and returns instead of deadlocking.  Transfers are
    idempotent (a word write/read to an addressed slave), so a retry
    after a lost ``done`` edge re-serves the same request.

    Multi-hop (Model4) stays supported: the response window is bounded
    per attempt but generous, and retries cover a forwarding slave that
    answers late.
    """

    name = "handshake-timeout"
    cycles_per_transfer = 4
    supports_multi_hop = True

    def __init__(self, recovery: Optional[RecoveryPolicy] = None):
        self.recovery = recovery or RecoveryPolicy()

    def extra_signals(self, bus: BusNet) -> List[Variable]:
        return [
            signal(
                bus_error_name(bus.name),
                BIT,
                init=0,
                doc=f"{bus.name} unrecovered-transfer error flag",
            )
        ]

    def master_send(self, bus: BusNet) -> Subprogram:
        return self._master(bus, send=True)

    def master_receive(self, bus: BusNet) -> Subprogram:
        return self._master(bus, send=False)

    def _master(self, bus: BusNet, send: bool) -> Subprogram:
        s = bus_signal_names(bus.name)
        err = bus_error_name(bus.name)
        policy = self.recovery
        strobe = s["wr"] if send else s["rd"]

        drive = [sassign(s["addr"], var("addr"))]
        if send:
            drive.append(sassign(s["data"], var("data")))
        drive += [sassign(strobe, 1), sassign(s["start"], 1)]

        poll_rise = [
            assign("mst_seen", 0),
            assign("mst_ticks", 0),
            while_(
                var("mst_seen").eq(0).and_(
                    var("mst_ticks") < policy.timeout_ticks
                ),
                [
                    wait_for(1),
                    if_(
                        var(s["done"]).eq(1),
                        [assign("mst_seen", 1)],
                        [assign("mst_ticks", var("mst_ticks") + 1)],
                    ),
                ],
            ),
        ]
        on_ack = [assign("mst_ok", 1)]
        if not send:
            # sample while the slave still drives the bus (start held)
            on_ack.insert(0, assign("data", var(s["data"])))
        release = [sassign(s["start"], 0), sassign(strobe, 0)]
        poll_fall = [
            assign("mst_ticks", 0),
            while_(
                var(s["done"]).eq(1).and_(
                    var("mst_ticks") < policy.timeout_ticks
                ),
                [wait_for(1), assign("mst_ticks", var("mst_ticks") + 1)],
            ),
        ]

        body = [
            assign("mst_ok", 0),
            assign("mst_try", 0),
            while_(
                var("mst_ok").eq(0).and_(
                    var("mst_try") < policy.max_retries
                ),
                [
                    assign("mst_try", var("mst_try") + 1),
                    *drive,
                    *poll_rise,
                    if_(var("mst_seen").eq(1), on_ack),
                    *release,
                    *poll_fall,
                    if_(
                        var("mst_ok").eq(0),
                        [wait_for(policy.backoff_ticks)],
                    ),
                ],
                expected=1,
            ),
            if_(var("mst_ok").eq(0), [sassign(err, 1)]),
        ]
        op = "write one word to" if send else "read one word from"
        return Subprogram(
            master_send_name(bus.name) if send else master_receive_name(bus.name),
            params=[
                self._addr_param(bus),
                self._data_in_param(bus) if send else self._data_out_param(bus),
            ],
            stmt_body=body,
            decls=[
                variable("mst_ok", BIT, init=0, doc="transfer acknowledged"),
                variable("mst_seen", BIT, init=0, doc="done edge observed"),
                variable("mst_try", int_type(8), init=0, doc="attempt counter"),
                variable("mst_ticks", int_type(16), init=0, doc="poll counter"),
            ],
            doc=(
                f"{op} a slave on {bus.name} "
                f"(4-phase handshake, timeout {policy.timeout_ticks} ticks, "
                f"{policy.max_retries} retries, err fallback)"
            ),
        )


class StrobeProtocol(Protocol):
    """A two-phase timed strobe: no ``done`` acknowledge.

    The master holds ``start`` for a fixed window the slave is assumed
    to meet (slaves respond within delta cycles in this simulator).
    Fewer bus-level transfers per word than the handshake, but no
    protection against a slow slave — exactly the trade the
    protocol-selection experiment quantifies.
    """

    name = "strobe"
    cycles_per_transfer = 2
    #: a fixed hold window cannot wait for a bus interface that first
    #: forwards the request over further buses
    supports_multi_hop = False

    #: Time units the strobe is held; slaves must respond within this.
    strobe_hold = 2

    def master_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_send_name(bus.name),
            params=[self._addr_param(bus), self._data_in_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["data"], var("data")),
                sassign(s["wr"], 1),
                sassign(s["start"], 1),
                wait_for(self.strobe_hold),
                sassign(s["start"], 0),
                sassign(s["wr"], 0),
                wait_for(self.strobe_hold),
            ],
            doc=f"write one word to a slave on {bus.name} (timed strobe)",
        )

    def master_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            master_receive_name(bus.name),
            params=[self._addr_param(bus), self._data_out_param(bus)],
            stmt_body=[
                sassign(s["addr"], var("addr")),
                sassign(s["rd"], 1),
                sassign(s["start"], 1),
                wait_for(self.strobe_hold),
                assign("data", var(s["data"])),
                sassign(s["start"], 0),
                sassign(s["rd"], 0),
                wait_for(self.strobe_hold),
            ],
            doc=f"read one word from a slave on {bus.name} (timed strobe)",
        )

    def slave_send(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_send_name(bus.name),
            params=[self._data_in_param(bus)],
            stmt_body=[
                sassign(s["data"], var("data")),
                wait_until(var(s["start"]).eq(0)),
            ],
            doc=f"serve a read request on {bus.name} (timed strobe)",
        )

    def slave_receive(self, bus: BusNet) -> Subprogram:
        s = bus_signal_names(bus.name)
        return Subprogram(
            slave_receive_name(bus.name),
            params=[self._data_out_param(bus)],
            stmt_body=[
                assign("data", var(s["data"])),
                wait_until(var(s["start"]).eq(0)),
            ],
            doc=f"serve a write request on {bus.name} (timed strobe)",
        )


#: Registry of available protocols by name.
PROTOCOLS: Dict[str, Protocol] = {
    HandshakeProtocol.name: HandshakeProtocol(),
    StrobeProtocol.name: StrobeProtocol(),
    TimeoutHandshakeProtocol.name: TimeoutHandshakeProtocol(),
}


def resolve_protocol(protocol) -> Protocol:
    """Accept a :class:`Protocol` or its registry name."""
    if isinstance(protocol, Protocol):
        return protocol
    found = PROTOCOLS.get(protocol)
    if found is None:
        raise RefinementError(
            f"unknown protocol {protocol!r}; available: {sorted(PROTOCOLS)}"
        )
    return found
