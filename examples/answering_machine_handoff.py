#!/usr/bin/env python3
"""The full codesign flow on a second workload, ending at the hand-off.

Runs the telephone answering machine (the canonical SpecCharts example)
through the complete pipeline the paper describes: functional
simulation, partitioning, model selection, refinement, equivalence
verification — and then the downstream hand-off the paper motivates:
the software partition as C and the refined design as behavioral VHDL.

Run:  python examples/answering_machine_handoff.py
"""

import pathlib
import tempfile

from repro.apps.answering import (
    TAM_INPUTS,
    answering_machine_specification,
    tam_partition,
)
from repro.estimate import bus_transfer_rates, profile_specification
from repro.export import export_c, export_vhdl
from repro.graph import AccessGraph, classify_variables
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim import Simulator
from repro.sim.equivalence import check_equivalence


def main() -> None:
    spec = answering_machine_specification()
    spec.validate()

    # 1. functional simulation: the machine answers, records, plays back
    run = Simulator(spec).run(inputs=TAM_INPUTS)
    print("functional model:", run.output_values())

    # 2. the control/audio partition and its classification
    partition = tam_partition(spec)
    graph = AccessGraph.from_specification(spec)
    print(classify_variables(graph, partition).describe())

    # 3. pick the implementation model with the lowest hot-spot rate
    profile = profile_specification(spec, partition, graph=graph,
                                    inputs=TAM_INPUTS)
    best, best_rate = None, None
    for model in ALL_MODELS:
        plan = model.build_plan(spec, partition, graph=graph)
        report = bus_transfer_rates(plan, graph, profile)
        print(f"  {model.name}: max bus {report.max_rate / 1e6:.0f} Mbit/s "
              f"over {len(plan.buses)} bus(es)")
        if best_rate is None or report.max_rate < best_rate:
            best, best_rate = model, report.max_rate
    print(f"-> refining with {best.name}")

    # 4. refine and verify
    design = Refiner(spec, partition, best).run()
    check_equivalence(design, inputs=TAM_INPUTS).raise_if_mismatched()
    sizes = design.line_counts()
    print(f"refined: {sizes['refined']} lines ({sizes['ratio']}x), "
          "co-simulation equivalent")

    # 5. the hand-off: C for the compiler, VHDL for behavioral synthesis
    out_dir = pathlib.Path(tempfile.mkdtemp(prefix="tam_handoff_"))
    (out_dir / "tam_functional.c").write_text(
        export_c(spec, inputs=TAM_INPUTS)
    )
    (out_dir / "tam_refined.vhd").write_text(export_vhdl(design.spec))
    print(f"hand-off written to {out_dir}/ "
          "(tam_functional.c, tam_refined.vhd)")


if __name__ == "__main__":
    main()
