#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 walkthrough, end to end.

Builds the three-behavior specification (A, B, C sharing variable x),
allocates a processor and an ASIC, applies the Figure 1c partition
(A, C -> PROC; B, x -> ASIC1), refines it into an implementation model,
and proves the refined design functionally equivalent by co-simulation.

Run:  python examples/quickstart.py
"""

from repro.apps.figures import figure1_partition, figure1_specification
from repro.graph import AccessGraph, classify_variables
from repro.lang.printer import print_specification
from repro.models import MODEL1
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


def main() -> None:
    # 1. the functional model (paper Figure 1a)
    spec = figure1_specification()
    spec.validate()
    print("=== original functional model ===")
    print(print_specification(spec))

    # 2. the implicit channels the refiner must implement
    graph = AccessGraph.from_specification(spec)
    print("derived data-access channels:")
    for channel in graph.data_channels():
        print(f"  {channel}")
    print()

    # 3. the Figure 1c partition and its variable classification
    partition = figure1_partition(spec)
    print(partition.describe())
    print(classify_variables(graph, partition).describe())
    print()

    # 4. model refinement (Model1: single-port global memory)
    design = Refiner(spec, partition, MODEL1).run()
    print("=== refinement result ===")
    print(design.describe())
    print()

    # 5. the refined specification is itself simulatable: verify it
    for seed in (3, 0, -5):
        report = check_equivalence(design, inputs={"seed": seed})
        verdict = "equivalent" if report.equivalent else "MISMATCH"
        print(
            f"seed={seed:+d}: original result="
            f"{report.original_run.value_of('result')} "
            f"refined result={report.refined_run.value_of('result')} "
            f"-> {verdict}"
        )
    print()
    print("=== refined specification (excerpt) ===")
    refined_text = print_specification(design.spec)
    print("\n".join(refined_text.splitlines()[:60]))
    print(f"... ({len(refined_text.splitlines())} lines total, "
          f"{design.line_counts()['ratio']}x the original)")


if __name__ == "__main__":
    main()
