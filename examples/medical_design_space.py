#!/usr/bin/env python3
"""Design-space exploration of the medical system — the paper's §5 flow.

For each of the three designs (partitions with different local/global
variable ratios), estimate every implementation model's bus transfer
rates and design cost, pick the most suitable model the way the paper's
discussion does (lowest hot-spot rate, cost as tie-breaker), then
refine the winner and verify it by co-simulation.

Run:  python examples/medical_design_space.py
"""

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.estimate import (
    bus_transfer_rates,
    channel_rates,
    design_cost,
    profile_specification,
)
from repro.experiments import default_allocation, render_table
from repro.graph import AccessGraph, classify_variables
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


def main() -> None:
    spec = medical_specification()
    spec.validate()
    allocation = default_allocation()
    graph = AccessGraph.from_specification(spec)
    print(
        f"medical system: {spec.stats().behaviors} behaviors, "
        f"{len(graph.variable_names)} partitionable variables, "
        f"{graph.channel_count()} channels, {spec.line_count()} lines\n"
    )

    for design_name, partition in all_designs(spec).items():
        classification = classify_variables(graph, partition)
        print(f"==== {design_name}: {classification.ratio_label()} ====")
        profile = profile_specification(
            spec, partition, allocation, inputs=MEDICAL_INPUTS, graph=graph
        )
        rates = channel_rates(graph, profile)

        rows = []
        scored = []
        for model in ALL_MODELS:
            plan = model.build_plan(spec, partition, graph=graph)
            report = bus_transfer_rates(plan, graph, profile, rates=rates)
            cost = design_cost(plan, rates=report)
            scored.append((report.max_rate, cost.total, model))
            rows.append(
                [
                    model.name,
                    len(plan.buses),
                    len(plan.memories),
                    f"{report.max_rate / 1e6:.0f}",
                    f"{report.total_rate / 1e6:.0f}",
                    f"{cost.total:.0f}",
                ]
            )
        print(
            render_table(
                ["model", "buses", "memories", "max bus Mbit/s",
                 "total Mbit/s", "cost"],
                rows,
            )
        )

        best = min(scored)[2]
        print(f"-> selected {best.name} (lowest hot-spot rate)")
        refined = Refiner(spec, partition, best, allocation=allocation).run()
        report = check_equivalence(refined, inputs=MEDICAL_INPUTS)
        sizes = refined.line_counts()
        verdict = "equivalent" if report.equivalent else "MISMATCH"
        print(
            f"   refined: {sizes['refined']} lines ({sizes['ratio']}x), "
            f"co-simulation {verdict}\n"
        )


if __name__ == "__main__":
    main()
