#!/usr/bin/env python3
"""Extending the protocol library — the paper's 'different protocols'
hook.

Figure 5d notes that "when selecting a different bus protocol, the
content in the subroutines will change correspondingly".  This example
defines a new protocol — a four-phase handshake that additionally
drives a one-bit parity line alongside the data bus — registers it, and
refines the Figure 2 system with it.  Equivalence checking then shows
the refinement is still correct: the protocol is an implementation
detail the rest of the refiner never looks at.

Run:  python examples/custom_protocol_refinement.py
"""

from repro.apps.figures import figure2_partition, figure2_specification
from repro.arch.components import BusNet
from repro.arch.protocols import PROTOCOLS, HandshakeProtocol
from repro.models import MODEL2
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import sassign
from repro.spec.expr import var
from repro.spec.subprogram import Subprogram


class ParityHandshake(HandshakeProtocol):
    """The Figure 5d handshake plus a parity line on every transfer.

    The bundle gains one signal (``<bus>_par``); masters drive it with
    the payload's low bit before strobing.  Slave subroutines are
    inherited unchanged — they ignore parity, as a real memory might.
    """

    name = "parity-handshake"
    cycles_per_transfer = 5  # one extra line toggles per word

    def parity_signal(self, bus: BusNet) -> str:
        return f"{bus.name}_par"

    def extra_signals(self, bus: BusNet):
        from repro.spec.types import BIT
        from repro.spec.variable import signal as make_signal

        return [
            make_signal(self.parity_signal(bus), BIT, init=0,
                        doc=f"parity of {bus.name} transfers")
        ]

    def _with_parity(self, sub: Subprogram, bus: BusNet) -> Subprogram:
        parity = self.parity_signal(bus)
        stmts = [sassign(parity, var("data") % 2)] + list(sub.stmt_body)
        return Subprogram(sub.name, sub.params, stmts, sub.decls,
                          doc=sub.doc + " + parity drive")

    def master_send(self, bus: BusNet) -> Subprogram:
        return self._with_parity(super().master_send(bus), bus)


def main() -> None:
    # register the protocol under its name so Refiner(protocol=...) finds it
    PROTOCOLS[ParityHandshake.name] = ParityHandshake()

    spec = figure2_specification()
    spec.validate()
    partition = figure2_partition(spec)
    design = Refiner(
        spec, partition, MODEL2, protocol=ParityHandshake.name
    ).run()

    print(design.describe())
    print()
    print("protocol subroutines generated:")
    for sub_name in design.spec.subprograms:
        if sub_name.startswith("MST_send_b"):
            print(f"  {sub_name}")

    for stimulus in (1, 5, -3):
        report = check_equivalence(design, inputs={"stimulus": stimulus})
        verdict = "equivalent" if report.equivalent else "MISMATCH"
        print(f"stimulus={stimulus:+d}: co-simulation {verdict}")

    # clean up the registry for repeated runs in one interpreter
    del PROTOCOLS[ParityHandshake.name]


if __name__ == "__main__":
    main()
