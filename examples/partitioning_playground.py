#!/usr/bin/env python3
"""Writing a specification in the textual language and partitioning it
automatically.

Shows the front-to-back flow on a brand-new system (a small packet
classifier) written as SpecCharts-like *source text*: parse it, derive
its access graph, run the three baseline partitioners, compare their
cuts, then refine the best result and verify it.

Run:  python examples/partitioning_playground.py
"""

from repro.experiments import render_table
from repro.graph import AccessGraph, classify_variables
from repro.lang.parser import parse
from repro.models import MODEL2
from repro.partition import (
    annealed_partition,
    balance_penalty,
    cut_weight,
    greedy_partition,
    kl_partition,
    partition_cost,
)
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence

SOURCE = """
specification PacketClassifier is
  input variable pkt_word : integer<16> := 21;
  input variable pkt_len : integer<16> := 6;
  output variable verdict : integer<16> := 0;
  output variable counted : integer<16> := 0;
  variable header : integer<16> := 0;
  variable checksum : integer<16> := 0;
  variable rule_hits : integer<16> := 0;
  variable payload_sum : integer<16> := 0;
  variable offset : integer<16> := 0;
  variable flow_state : integer<16> := 0;

  behavior Top is sequential
    transitions
      Parse -> Check;
      Check : (checksum mod 2 = 0) -> Match;
      Check : (checksum mod 2 /= 0) -> Drop;
      Match -> Count;
      Drop -> Count;
      Count -> complete;
    behavior Parse is leaf
    begin
      header := pkt_word + 7;
      offset := header mod 5;
      payload_sum := 0;
      for i in 1 to 6 loop
        payload_sum := payload_sum + (pkt_word + i) * 3;
      end loop;
    end behavior;
    behavior Check is leaf
    begin
      checksum := payload_sum + header;
      checksum := checksum mod 251;
    end behavior;
    behavior Match is leaf
    begin
      rule_hits := rule_hits + 1;
      flow_state := flow_state + header - offset;
      verdict := 1;
    end behavior;
    behavior Drop is leaf
    begin
      flow_state := flow_state - 1;
      verdict := 0;
    end behavior;
    behavior Count is leaf
    begin
      counted := rule_hits * 100 + pkt_len;
    end behavior;
  end behavior;
end specification;
"""


def main() -> None:
    spec = parse(SOURCE)
    spec.validate()
    graph = AccessGraph.from_specification(spec)
    print(
        f"parsed {spec.name}: {spec.stats().behaviors} behaviors, "
        f"{len(graph.variable_names)} partitionable variables, "
        f"{graph.channel_count()} channels\n"
    )

    candidates = {
        "greedy": greedy_partition(spec, ("SW", "HW"), graph=graph),
        "kl": kl_partition(spec, ("SW", "HW"), graph=graph),
        "annealed": annealed_partition(spec, ("SW", "HW"), graph=graph,
                                       steps=1200),
    }
    rows = [
        [
            name,
            f"{cut_weight(graph, partition):.0f}",
            f"{balance_penalty(partition):.2f}",
            f"{partition_cost(graph, partition):.3f}",
            partition.p,
        ]
        for name, partition in candidates.items()
    ]
    print(render_table(
        ["algorithm", "cut weight", "imbalance", "cost", "components"],
        rows,
        title="baseline partitioners on the packet classifier",
    ))

    best_name, best = min(
        candidates.items(), key=lambda kv: partition_cost(graph, kv[1])
    )
    print(f"\nbest: {best_name}")
    print(best.describe())
    if best.p < 2:
        print("best partition keeps everything on one component; "
              "nothing to refine")
        return
    print(classify_variables(graph, best).describe())

    design = Refiner(spec, best, MODEL2).run()
    print(f"\nrefined with {design.model.name}: "
          f"{design.line_counts()['refined']} lines "
          f"({design.line_counts()['ratio']}x)")
    for word in (21, 4, 99):
        report = check_equivalence(design, inputs={"pkt_word": word})
        verdict = "equivalent" if report.equivalent else "MISMATCH"
        print(f"pkt_word={word}: co-simulation {verdict}")


if __name__ == "__main__":
    main()
