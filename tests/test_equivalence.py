"""Tests for the equivalence checker itself — including that it
actually *detects* divergence, not just confirms agreement."""

import pytest

from repro.apps.figures import figure1_partition, figure1_specification
from repro.errors import EquivalenceError
from repro.models import MODEL1
from repro.refine import Refiner
from repro.sim.equivalence import Mismatch, check_equivalence
from repro.spec.builder import assign, wait_until
from repro.spec.expr import Const, var
from repro.spec.stmt import body


@pytest.fixture()
def design():
    spec = figure1_specification()
    spec.validate()
    return Refiner(spec, figure1_partition(spec), MODEL1).run()


class TestAgreement:
    def test_equivalent_report(self, design):
        report = check_equivalence(design, inputs={"seed": 3})
        assert report.equivalent
        assert report.mismatches == []
        assert "EQUIVALENT" in report.describe()

    def test_raise_if_mismatched_passes_through(self, design):
        report = check_equivalence(design, inputs={"seed": 3})
        assert report.raise_if_mismatched() is report

    def test_runs_are_exposed(self, design):
        report = check_equivalence(design, inputs={"seed": 3})
        assert report.original_run.completed
        assert report.refined_run.completed
        assert report.original_run.value_of("result") == 8


class TestDivergenceDetection:
    def _corrupt_memory(self, design):
        """Sabotage the refined design: C's protocol write of x sends a
        wrong value, so the memory ends up holding garbage."""
        from repro.spec.expr import Const
        from repro.spec.stmt import CallStmt

        c = design.spec.find_behavior("C")
        new_stmts = []
        for stmt in c.stmt_body:
            if isinstance(stmt, CallStmt) and "MST_send" in stmt.callee:
                stmt = CallStmt(stmt.callee, (stmt.args[0], Const(55)))
            new_stmts.append(stmt)
        c.stmt_body = body(new_stmts)
        return design

    def test_detects_memory_value_mismatch(self, design):
        self._corrupt_memory(design)
        # seed=-5 takes the C branch, whose write is corrupted
        report = check_equivalence(design, inputs={"seed": -5})
        assert not report.equivalent
        kinds = {m.kind for m in report.mismatches}
        assert "memory-value" in kinds

    def test_detects_output_divergence(self, design):
        # corrupt B_NEW: it now writes result+1
        b_new = design.spec.find_behavior("B_NEW")
        loop = b_new.stmt_body[0]
        sabotage = assign("result", var("result") + 1)
        new_body = body(list(loop.loop_body) + [sabotage])
        from repro.spec.stmt import While

        b_new.stmt_body = body([While(loop.cond, new_body)])
        report = check_equivalence(design, inputs={"seed": 3})
        assert not report.equivalent
        kinds = {m.kind for m in report.mismatches}
        assert "output-trace" in kinds or "output-value" in kinds

    def test_raise_if_mismatched_raises(self, design):
        self._corrupt_memory(design)
        report = check_equivalence(design, inputs={"seed": -5})
        with pytest.raises(EquivalenceError):
            report.raise_if_mismatched()

    def test_mismatch_str_mentions_both_values(self):
        mismatch = Mismatch("output-value", "result", 8, 9)
        text = str(mismatch)
        assert "result" in text
        assert "8" in text and "9" in text

    def test_describe_lists_mismatches(self, design):
        self._corrupt_memory(design)
        report = check_equivalence(design, inputs={"seed": -5})
        assert "MISMATCH" in report.describe()
        assert "memory-value" in report.describe()


class TestEveryMismatchKind:
    """Each of the four ``Mismatch.kind`` values, provoked by a
    deliberately broken refinement."""

    @staticmethod
    def _extend_server_loop(design, extra):
        """Insert ``extra`` at the end of the moved-B daemon's serve
        loop (B_NEW is ``while true ... end loop``; code appended after
        the loop would be dead)."""
        from repro.spec.stmt import While

        b_new = design.spec.find_behavior("B_NEW")
        loop = b_new.stmt_body[0]
        b_new.stmt_body = body(
            [While(loop.cond, body(list(loop.loop_body) + list(extra)))]
        )

    def test_completion_kind(self, design):
        # the refined B_CTRL blocks forever on an unsatisfiable wait,
        # so the refined run goes quiescent without completing
        b_ctrl = design.spec.find_behavior("B_CTRL")
        b_ctrl.stmt_body = body([wait_until(Const(False))])
        report = check_equivalence(design, inputs={"seed": 3})
        assert not report.equivalent
        kinds = {m.kind for m in report.mismatches}
        assert kinds == {"completion"}  # reported alone, nothing else
        assert report.original_run.completed
        assert not report.refined_run.completed

    def test_output_value_kind(self, design):
        # an off-by-one after the server's result write: both the last
        # value and the write trace of the output diverge
        self._extend_server_loop(
            design, [assign("result", var("result") + 1)]
        )
        report = check_equivalence(design, inputs={"seed": 3})
        kinds = {m.kind for m in report.mismatches}
        assert "output-value" in kinds

    def test_output_trace_kind_with_matching_final_value(self, design):
        # a transient glitch: the refined design writes result+1 and
        # then writes the correct value back, so the final value (and
        # the memory image) match while the write trace does not
        self._extend_server_loop(
            design,
            [
                assign("result", var("result") + 1),
                assign("result", var("result") - 1),
            ],
        )
        report = check_equivalence(design, inputs={"seed": 3})
        kinds = {m.kind for m in report.mismatches}
        assert "output-trace" in kinds
        assert "output-value" not in kinds

    def test_memory_value_kind(self, design):
        from repro.spec.stmt import CallStmt

        c = design.spec.find_behavior("C")
        new_stmts = []
        for stmt in c.stmt_body:
            if isinstance(stmt, CallStmt) and "MST_send" in stmt.callee:
                stmt = CallStmt(stmt.callee, (stmt.args[0], Const(55)))
            new_stmts.append(stmt)
        c.stmt_body = body(new_stmts)
        report = check_equivalence(design, inputs={"seed": -5})
        assert "memory-value" in {m.kind for m in report.mismatches}


class TestWorkloadEquivalence:
    """The default design of every registry workload refines to an
    equivalent implementation under Model1 (runs once per entry via the
    session-scoped ``workload`` fixture)."""

    def test_default_design_model1_equivalent(self, workload):
        spec = workload.spec()
        spec.validate()
        partition = workload.designs(spec)[workload.default_design]
        refined = Refiner(spec, partition, MODEL1).run()
        report = check_equivalence(
            refined, inputs=dict(workload.default_inputs)
        )
        assert report.equivalent, report.describe()
