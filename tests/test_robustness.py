"""Robustness campaign runner: classification, rendering, determinism."""

import pytest

from repro.experiments.robustness import (
    RobustnessCell,
    RobustnessResult,
    default_scenarios,
    run_robustness,
)
from repro.sim.faults import FaultScenario


class TestCatalog:
    def test_default_scenarios_cover_both_expectations(self):
        scenarios = default_scenarios()
        expects = {s.expect for s in scenarios}
        assert expects == {"recover", "detect"}

    def test_bus_globs_do_not_match_control_signals(self):
        from fnmatch import fnmatchcase

        for scenario in default_scenarios():
            if scenario.target.startswith("b*"):
                assert not fnmatchcase("Acquire_done", scenario.target)
                assert not fnmatchcase("Filter_start", scenario.target)


class TestCellSemantics:
    def _cell(self, expect, outcome, fired=1):
        return RobustnessCell(
            design="D",
            model="M",
            scenario=FaultScenario(
                name="s", kind="drop", target="x", expect=expect
            ),
            outcome=outcome,
            fired=fired,
        )

    def test_recover_expectation(self):
        assert self._cell("recover", "recovered").as_expected
        assert not self._cell("recover", "mismatch").as_expected

    def test_detect_expectation_accepts_every_detection_channel(self):
        for outcome in ("deadlock", "limit", "sim-error", "mismatch"):
            assert self._cell("detect", outcome).as_expected
        assert not self._cell("detect", "recovered").as_expected

    def test_vacuous_cell_is_never_unexpected(self):
        cell = self._cell("recover", "mismatch", fired=0)
        assert cell.vacuous and cell.as_expected
        assert cell.label() == "-"

    def test_unexpected_label_is_flagged(self):
        assert self._cell("recover", "mismatch").label() == "mismatch !"


class TestCampaignSlice:
    """One design x one model x two scenarios — the fast end-to-end
    slice; the full sweep runs from the CLI/benchmark harness."""

    @pytest.fixture(scope="class")
    def result(self, medical_spec):
        return run_robustness(
            spec=medical_spec,
            scenarios=[
                FaultScenario(
                    name="drop-done", kind="drop", target="b*_done",
                    count=1, expect="recover",
                ),
                FaultScenario(
                    name="kill-memory", kind="kill", target="?mem*",
                    count=1, expect="detect",
                ),
            ],
            designs=("Design1",),
            models=("Model4",),
        )

    def test_all_cells_behave_as_expected(self, result):
        assert result.unexpected() == []
        cells = result.all_cells()
        assert len(cells) == 2
        assert all(not c.vacuous for c in cells)

    def test_recovering_scenario_reported(self, result):
        assert "drop-done" in result.recovered_scenarios("Design1")

    def test_render_contains_table_and_summary(self, result):
        text = result.render()
        assert "Robustness campaign" in text
        assert "| Design1" in text
        assert "unexpected: 0" in text

    def test_same_seed_is_byte_identical(self, result, medical_spec):
        again = run_robustness(
            spec=medical_spec,
            scenarios=[
                FaultScenario(
                    name="drop-done", kind="drop", target="b*_done",
                    count=1, expect="recover",
                ),
                FaultScenario(
                    name="kill-memory", kind="kill", target="?mem*",
                    count=1, expect="detect",
                ),
            ],
            designs=("Design1",),
            models=("Model4",),
        )
        assert again.render() == result.render()


@pytest.mark.campaign
class TestFullCampaign:
    """Tier 2: the complete scenarios x 3 designs x 4 models sweep.
    Deselected by the default addopts; CI's scheduled job runs it with
    ``pytest -m campaign``."""

    def test_full_sweep_has_no_unexpected_cells(self, medical_spec):
        result = run_robustness(spec=medical_spec)
        assert result.unexpected() == []
        assert len(result.all_cells()) == 72
        assert "unexpected: 0" in result.render()
