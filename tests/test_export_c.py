"""Tests for the C backend, including differential testing: the
generated C program must print exactly the outputs the discrete-event
simulator computes for the same specification and inputs."""

import pathlib
import shutil
import subprocess

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.figures import figure1_specification, figure2_specification
from repro.apps.medical import medical_specification
from repro.export import CExportError, export_c
from repro.models import MODEL2
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim import Simulator
from repro.spec.builder import (
    assign,
    conc,
    for_,
    if_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
    while_,
)
from repro.spec.expr import var
from repro.spec.types import EnumType, int_type
from repro.spec.variable import Role, variable

GCC = shutil.which("gcc") or shutil.which("cc")

needs_gcc = pytest.mark.skipif(GCC is None, reason="no C compiler available")


def compile_and_run(source: str, tmp_path: pathlib.Path) -> dict:
    c_file = tmp_path / "prog.c"
    binary = tmp_path / "prog"
    c_file.write_text(source)
    compile_result = subprocess.run(
        [GCC, "-Wall", "-Wextra", "-Werror", "-O1", "-o", str(binary),
         str(c_file)],
        capture_output=True,
        text=True,
    )
    assert compile_result.returncode == 0, compile_result.stderr
    run_result = subprocess.run(
        [str(binary)], capture_output=True, text=True, timeout=30
    )
    assert run_result.returncode == 0
    outputs = {}
    for line in run_result.stdout.splitlines():
        name, _, value = line.partition("=")
        outputs[name] = int(value)
    return outputs


def simulate(specification, inputs=None) -> dict:
    result = Simulator(specification).run(inputs=inputs)
    assert result.completed
    return {k: int(v) for k, v in result.output_values().items()}


class TestGeneratedSource:
    def test_contains_helpers_and_main(self):
        source = export_c(figure1_specification())
        assert "im_mod" in source
        assert "int main(void)" in source
        assert "beh_Main" in source

    def test_state_constants_for_sequential_composites(self):
        source = export_c(figure1_specification())
        for name in ("S_A", "S_B", "S_C"):
            assert name in source

    def test_concurrent_top_rejected(self):
        design = spec(
            "Conc",
            conc("Top", [leaf("A", assign("x", 1)), leaf("B", assign("x", 2))]),
            variables=[variable("x", int_type())],
        )
        with pytest.raises(CExportError):
            export_c(design)

    def test_inputs_override(self):
        source = export_c(figure1_specification(), inputs={"seed": -5})
        assert "seed = -5" in source

    def test_unknown_input_rejected(self):
        with pytest.raises(CExportError):
            export_c(figure1_specification(), inputs={"x": 3})

    def test_enum_constants(self):
        state = EnumType("mode_t", ("idle", "busy"))
        design = spec(
            "E",
            leaf("A", assign("m", "busy")),
            variables=[variable("m", state, init="idle")],
        )
        design.validate()
        source = export_c(design)
        assert "enum mode_t { K_mode_t_idle = 0, K_mode_t_busy = 1 };" in source
        assert "m = K_mode_t_busy;" in source


@needs_gcc
class TestDifferential:
    @pytest.mark.parametrize("seed", [3, -5, 0, 7])
    def test_figure1(self, tmp_path, seed):
        design = figure1_specification()
        design.validate()
        expected = simulate(design, inputs={"seed": seed})
        got = compile_and_run(
            export_c(design, inputs={"seed": seed}), tmp_path
        )
        assert got == expected

    @pytest.mark.parametrize("stimulus", [1, 7, -4])
    def test_figure2(self, tmp_path, stimulus):
        design = figure2_specification()
        design.validate()
        expected = simulate(design, inputs={"stimulus": stimulus})
        got = compile_and_run(
            export_c(design, inputs={"stimulus": stimulus}), tmp_path
        )
        assert got == expected

    @pytest.mark.parametrize("profile,cycles", [(12, 2), (37, 2), (55, 1),
                                                (25, 3)])
    def test_medical(self, tmp_path, profile, cycles):
        design = medical_specification()
        design.validate()
        inputs = {"patient_profile": profile, "num_cycles": cycles}
        expected = simulate(design, inputs=inputs)
        got = compile_and_run(export_c(design, inputs=inputs), tmp_path)
        assert got == expected

    def test_division_and_mod_semantics(self, tmp_path):
        """VHDL '/' truncates toward zero; 'mod' follows the divisor."""
        body = leaf(
            "A",
            assign("q", var("a") / var("b")),
            assign("r", var("a") % var("b")),
            assign("out", var("q") * 1000 + var("r")),
        )
        design = spec(
            "DivMod",
            body,
            variables=[
                variable("a", int_type(), init=-7, role=Role.INPUT),
                variable("b", int_type(), init=3, role=Role.INPUT),
                variable("q", int_type()),
                variable("r", int_type()),
                variable("out", int_type(), init=0, role=Role.OUTPUT),
            ],
        )
        design.validate()
        for a, b in ((-7, 3), (7, -3), (-7, -3), (7, 3)):
            expected = simulate(design, inputs={"a": a, "b": b})
            got = compile_and_run(
                export_c(design, inputs={"a": a, "b": b}), tmp_path
            )
            assert got == expected, f"a={a} b={b}"


@needs_gcc
class TestPartitionMode:
    def test_software_partition_compiles_against_bus_stub(self, tmp_path):
        """Export the processor side of a refined design; link against a
        stub bus driver that backs the address space with an array."""
        design_spec = figure2_specification()
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec,
            {
                "B1": "PROC", "B2": "PROC", "B3": "ASIC", "B4": "ASIC",
                "v1": "PROC", "v2": "PROC", "v3": "PROC", "v4": "PROC",
                "v5": "ASIC", "v6": "ASIC", "v7": "ASIC",
            },
        )
        refined = Refiner(design_spec, partition, MODEL2).run()
        # the processor partition: the refined home tree (B1, B2 chain)
        sw_top = refined.spec.find_behavior("System")
        source = export_c(refined.spec, top=sw_top, standalone=False)
        assert "extern int32_t bus_read" in source
        (tmp_path / "partition.c").write_text(source)
        (tmp_path / "stub.c").write_text(
            """
#include <stdint.h>
#include <stdio.h>
static int32_t mem[256];
int32_t bus_read(uint32_t addr) { return mem[addr & 255]; }
void bus_write(uint32_t addr, int32_t value) { mem[addr & 255] = value; }
void bus_idle(int cycles) { (void)cycles; }
extern int16_t stimulus, observed;
int16_t stimulus = 1, observed;
extern volatile uint8_t B3_start, B3_done, B4_start, B4_done;
volatile uint8_t B3_start, B3_done = 1, B4_start, B4_done = 1;
extern void run_System(void);
int main(void) { run_System(); printf("ok\\n"); return 0; }
"""
        )
        result = subprocess.run(
            [GCC, "-O1", "-o", str(tmp_path / "part"),
             str(tmp_path / "partition.c"), str(tmp_path / "stub.c")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


_names = ["w0", "w1", "w2"]


@st.composite
def straightline_programs(draw):
    stmts = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        target = draw(st.sampled_from(_names))
        kind = draw(st.integers(min_value=0, max_value=3))
        operand = draw(st.sampled_from(_names + ["inp"]))
        const = draw(st.integers(min_value=-9, max_value=9))
        if kind == 0:
            stmts.append(assign(target, var(operand) + const))
        elif kind == 1:
            stmts.append(assign(target, var(operand) * const))
        elif kind == 2:
            stmts.append(
                if_(var(operand) > const,
                    [assign(target, var(operand) - const)],
                    [assign(target, const)])
            )
        else:
            stmts.append(
                for_("i", 0, draw(st.integers(min_value=0, max_value=4)),
                     [assign(target, var(target) + var("i"))])
            )
    stmts.append(assign("out", var("w0") + var("w1") - var("w2")))
    body = leaf("P", *stmts)
    design = spec(
        "Rand",
        body,
        variables=[
            variable("inp", int_type(), init=draw(
                st.integers(min_value=-50, max_value=50)), role=Role.INPUT),
            variable("out", int_type(), init=0, role=Role.OUTPUT),
        ]
        + [variable(name, int_type(), init=1) for name in _names],
    )
    design.validate()
    return design


@needs_gcc
class TestDifferentialProperty:
    @given(design=straightline_programs())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_c_matches_simulator(self, tmp_path_factory, design):
        tmp_path = tmp_path_factory.mktemp("cdiff")
        expected = simulate(design)
        got = compile_and_run(export_c(design), tmp_path)
        assert got == expected
