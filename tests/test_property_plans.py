"""Property tests over the model plans: for random partitions of the
medical system, every model must plan a consistent topology — unique
addresses, routes that stay within the planned buses, bus counts within
the paper's formulas, and placements covering every variable."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.medical import medical_specification
from repro.graph import AccessGraph
from repro.models import ALL_MODELS
from repro.partition import Partition

SPEC = medical_specification()
SPEC.validate()
GRAPH = AccessGraph.from_specification(SPEC)
LEAVES = [leaf.name for leaf in SPEC.leaf_behaviors()]
VARIABLES = sorted(GRAPH.variable_names)


@st.composite
def random_partitions(draw):
    components = draw(
        st.sampled_from([("PROC", "ASIC"), ("P1", "P2", "P3")])
    )
    assignment = {}
    for name in LEAVES + VARIABLES:
        assignment[name] = draw(st.sampled_from(components))
    # force every component to be populated so p matches
    for index, component in enumerate(components):
        assignment[LEAVES[index % len(LEAVES)]] = component
    return Partition.from_mapping(SPEC, assignment, name="fuzz")


class TestPlanProperties:
    @given(random_partitions())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_every_model_plans_consistently(self, partition):
        for model in ALL_MODELS:
            plan = model.build_plan(SPEC, partition, graph=GRAPH)

            # bus count within the paper's formula
            assert len(plan.buses) <= model.max_buses(partition.p)

            # every variable placed exactly once
            placed = [
                name
                for memory in plan.memories.values()
                for name in memory.variables
            ]
            assert sorted(placed) == VARIABLES
            assert set(plan.placement) == set(VARIABLES)

            # addresses unique and gap-free
            slots = set()
            for name in VARIABLES:
                rng = plan.address_of(name)
                for addr in range(rng.base, rng.base + rng.size):
                    assert addr not in slots
                    slots.add(addr)
            assert slots == set(range(len(slots)))

            # every (accessor component, variable) pair routes over
            # buses that exist in the plan
            for channel in GRAPH.data_channels():
                component = partition.effective_component_of_behavior(
                    channel.behavior
                )
                for bus in plan.route(component, channel.variable):
                    assert bus in plan.buses

    @given(random_partitions())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_model4_cross_routes_are_symmetric_triples(self, partition):
        from repro.models import MODEL4

        plan = MODEL4.build_plan(SPEC, partition, graph=GRAPH)
        classification = plan.classification
        for variable in VARIABLES:
            home = classification.home[variable]
            for component in partition.components():
                route = plan.route(component, variable)
                if component == home:
                    assert len(route) == 1
                else:
                    assert len(route) == 3
                    # middle hop is always the interchange
                    from repro.models import BusRole

                    assert (
                        plan.buses[route[1]].role is BusRole.INTERCHANGE
                    )
