"""Integration of all three refinement classes at once: a *moved
composite* behavior whose internal transition conditions read a
variable homed on the other partition — control-related refinement
(wrap scheme), transition-condition data refinement inside the moved
wrapper, and the architecture machinery all have to compose."""

import pytest

from repro.models import ALL_MODELS
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import (
    assign,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable


@pytest.fixture(scope="module")
def moved_composite_design():
    """A on P1; composite B (with conditional internal arcs on shared
    ``x``) moved to P2; C back on P1."""
    a = leaf("A", assign("x", var("inp") + 2))
    b1 = leaf("B1", assign("x", var("x") * 2), assign("y", var("y") + 1))
    b2 = leaf("B2", assign("y", var("y") * 10))
    b3 = leaf("B3", assign("y", var("y") - 1))
    b = seq(
        "B",
        [b1, b2, b3],
        transitions=[
            transition("B1", var("x") > 5, "B2"),
            transition("B1", var("x") <= 5, "B3"),
            on_complete("B2"),
            on_complete("B3"),
        ],
    )
    c = leaf("C", assign("out", var("x") + var("y")))
    top = seq(
        "Main",
        [a, b, c],
        transitions=[
            transition("A", None, "B"),
            transition("B", None, "C"),
            on_complete("C"),
        ],
    )
    design = spec(
        "MovedComposite",
        top,
        variables=[
            variable("inp", int_type(), init=3, role=Role.INPUT),
            variable("out", int_type(), init=0, role=Role.OUTPUT),
            variable("x", int_type(), init=0),
            variable("y", int_type(), init=1),
        ],
    )
    design.validate()
    partition = Partition.from_mapping(
        design,
        {"A": "P1", "B": "P2", "C": "P1", "x": "P1", "y": "P2"},
        name="moved-composite",
    )
    return design, partition


class TestMovedCompositeWithRemoteConditions:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("inp", [3, 0, -6, 10])
    def test_equivalent(self, moved_composite_design, model, inp):
        design, partition = moved_composite_design
        refined = Refiner(design, partition, model).run()
        report = check_equivalence(refined, inputs={"inp": inp})
        report.raise_if_mismatched()

    def test_structure(self, moved_composite_design):
        design, partition = moved_composite_design
        refined = Refiner(design, partition, ALL_MODELS[0]).run()
        # the moved composite got the wrap scheme
        assert refined.control.moved[0].scheme == "wrap"
        wrapper = refined.spec.find_behavior("B_NEW")
        assert wrapper.daemon
        # the inner composite's conditions were rewritten to a tmp
        inner = refined.spec.find_behavior("B")
        from repro.spec.expr import free_variables

        for arc in inner.transitions:
            if arc.condition is not None:
                assert "x" not in free_variables(arc.condition)
        # and B declares the tmp the fetches fill
        assert any(d.name.startswith("tmp_x") for d in inner.decls)

    def test_fetch_runs_on_the_moved_side(self, moved_composite_design):
        """The condition fetch appended to B1 executes on P2 (B's new
        home), so the protocol call must route from P2."""
        design, partition = moved_composite_design
        refined = Refiner(design, partition, ALL_MODELS[3]).run()  # Model4
        b1 = refined.spec.find_behavior("B1")
        from repro.spec.stmt import CallStmt

        trailing = [s for s in b1.stmt_body if isinstance(s, CallStmt)]
        assert trailing, "B1 should end with the condition fetch"
        # x is homed on P1, fetched from P2: a REMOTE access in Model4
        assert trailing[-1].callee.startswith("REMOTE_receive")
