"""Chaos suite for the daemon: workers SIGKILLed mid-request, queue
overflow, circuit quarantine and recovery, drain under load, corrupt
cache entries.  The invariants under every fault:

* the server never hangs and never dies — the failing request gets a
  structured error, the next request gets service;
* a full queue is an immediate 429 with both ``Retry-After`` headers;
* a quarantined spec is refused up front (503) and recovers through a
  half-open probe once it stops crashing;
* a drain finishes in-flight work, refuses new work, and exits 0;
* a corrupt cache entry degrades to a recompute — the served payload
  is always the correct one.
"""

import json
import os
import threading
import time

import pytest

from repro.serve import ReproClient, ReproServer, ServeConfig

pytestmark = pytest.mark.slow


def _start(**overrides):
    options = dict(port=0, workers=1, queue_limit=1, no_cache=True,
                   chaos=True, breaker_threshold=2, breaker_cooldown=0.3)
    options.update(overrides)
    return ReproServer(ServeConfig(**options)).start()


def _client(server, **kw):
    kw.setdefault("retries", 0)
    return ReproClient(port=server.port, **kw)


class TestWorkerCrash:
    def test_sigkill_is_a_structured_500_and_service_continues(self):
        server = _start()
        try:
            client = _client(server)
            crashed = client.submit("chaos-crash", {"nonce": 0}, deadline=10)
            assert crashed.status == 500
            assert crashed.error_kind() == "crash"
            # the very next request is served normally
            alive = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 0},
                                  deadline=10)
            assert alive.ok
            stats = client.stats()
            assert stats["server"]["errors"].get("crash") == 1
            assert stats["server"]["ok"] == 1
        finally:
            server.close()

    def test_spin_job_is_preempted_by_deadline(self):
        server = _start()
        try:
            client = _client(server)
            spun = client.submit("chaos-spin", {"nonce": 0}, deadline=0.3)
            assert spun.status == 504
            assert client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 1},
                                 deadline=10).ok
        finally:
            server.close()


class TestCircuitQuarantine:
    def test_repeat_offender_is_circuit_broken(self):
        server = _start(breaker_threshold=2, breaker_cooldown=30.0)
        try:
            client = _client(server)
            for _ in range(2):
                assert client.submit("chaos-crash", {"nonce": 1},
                                     deadline=10).status == 500
            refused = client.submit("chaos-crash", {"nonce": 1}, deadline=10)
            assert refused.status == 503
            assert refused.error_kind() == "circuit-open"
            assert float(refused.headers["retry-after"]) >= 1
            # quarantine is per-spec: a different nonce still executes
            other = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 2},
                                  deadline=10)
            assert other.ok
            snapshot = client.stats()["breaker"]
            assert len(snapshot["open"]) == 1
            assert snapshot["trips"] == 1
        finally:
            server.close()

    def test_circuit_recovers_after_cooldown(self, tmp_path):
        trip = tmp_path / "trip"
        trip.write_text("x")
        server = _start(breaker_threshold=1, breaker_cooldown=0.2)
        try:
            client = _client(server)
            params = {"trip_file": str(trip), "nonce": 0}
            assert client.submit("chaos-flaky", params, deadline=10).status == 500
            assert client.submit("chaos-flaky", params,
                                 deadline=10).error_kind() == "circuit-open"
            trip.unlink()  # the fault is fixed...
            time.sleep(0.25)  # ...and the cooldown elapses
            probe = client.submit("chaos-flaky", params, deadline=10)
            assert probe.ok and probe.body["payload"]["recovered"] is True
            # circuit closed again: immediate service
            assert client.submit("chaos-flaky", params, deadline=10).ok
        finally:
            server.close()


class TestBackpressure:
    def test_queue_overflow_is_429_with_retry_after(self):
        server = _start(workers=1, queue_limit=1)
        try:
            stats_client = _client(server)

            def wait_for(predicate, what):
                ends = time.monotonic() + 5.0
                while time.monotonic() < ends:
                    if predicate(stats_client.stats()["server"]):
                        return
                    time.sleep(0.01)
                raise AssertionError(f"server never reached: {what}")

            background = []

            def occupy(nonce, seconds):
                background.append(
                    ReproClient(port=server.port, retries=0).submit(
                        "chaos-sleep", {"seconds": seconds, "nonce": nonce},
                        deadline=10,
                    )
                )

            # fill the single worker, then the single queue slot
            first = threading.Thread(target=occupy, args=(0, 0.8))
            first.start()
            wait_for(lambda s: s["in_flight"] == 1, "worker occupied")
            second = threading.Thread(target=occupy, args=(1, 0.0))
            second.start()
            wait_for(lambda s: s["queue_depth"] == 1, "queue slot occupied")

            rejected = _client(server).submit(
                "chaos-sleep", {"seconds": 0.0, "nonce": 99}, deadline=10
            )
            assert rejected.status == 429
            assert rejected.error_kind() == "queue-full"
            assert int(rejected.headers["retry-after"]) >= 1
            assert float(rejected.headers["x-repro-retry-after"]) > 0
            first.join()
            second.join()
            assert all(r.ok for r in background)
            # pressure released: the same submission now succeeds
            assert _client(server).submit(
                "chaos-sleep", {"seconds": 0.0, "nonce": 99}, deadline=10
            ).ok
        finally:
            server.close()

    def test_patient_client_rides_out_backpressure(self):
        server = _start(workers=1, queue_limit=1)
        try:
            clients = [
                ReproClient(port=server.port, retries=10, backoff_base=0.02,
                            backoff_cap=0.5)
                for _ in range(4)
            ]
            results = [None] * 4

            def run(index):
                results[index] = clients[index].submit(
                    "chaos-sleep", {"seconds": 0.1, "nonce": index},
                    deadline=10,
                )

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r is not None and r.ok for r in results)
        finally:
            server.close()


class TestDrain:
    def test_drain_finishes_in_flight_and_refuses_new(self):
        server = _start(workers=1, queue_limit=2, drain_grace=10.0)
        try:
            client = _client(server)
            in_flight = {}

            def slow():
                in_flight["response"] = client.submit(
                    "chaos-sleep", {"seconds": 0.5, "nonce": 0}, deadline=10
                )

            thread = threading.Thread(target=slow)
            thread.start()
            time.sleep(0.15)  # let the slow job reach a worker
            server.begin_drain("test")
            refused = _client(server).submit(
                "chaos-sleep", {"seconds": 0.0, "nonce": 1}, deadline=10
            )
            assert refused.status == 503
            assert refused.error_kind() == "draining"
            assert server.wait(timeout=5.0) == 0
            thread.join()
            assert in_flight["response"].ok
        finally:
            server.close()

    def test_drain_is_idempotent_and_wait_returns_zero_when_idle(self):
        server = _start()
        try:
            server.begin_drain("one")
            server.begin_drain("two")
            assert server.wait(timeout=5.0) == 0
        finally:
            server.close()


class TestCorruptCache:
    def test_corrupt_entry_degrades_to_correct_recompute(self, tmp_path):
        cache_dir = tmp_path / "cache"
        server = _start(no_cache=False, cache_dir=str(cache_dir))
        try:
            client = _client(server)
            first = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 7},
                                  deadline=10)
            assert first.ok and not first.cached
            key = first.body["key"]
            entry = cache_dir / key[:2] / f"{key}.json"
            assert entry.exists()
            entry.write_text("{ this is not json")
            again = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 7},
                                  deadline=10)
            assert again.ok and not again.cached  # recomputed, not served torn
            assert json.dumps(again.body, sort_keys=True) == json.dumps(
                first.body, sort_keys=True
            )
            assert client.stats()["cache"]["errors"] >= 1
            # and the rewritten entry is healthy again
            assert client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 7},
                                 deadline=10).cached
        finally:
            server.close()

    def test_mislabelled_entry_is_never_served(self, tmp_path):
        cache_dir = tmp_path / "cache"
        server = _start(no_cache=False, cache_dir=str(cache_dir))
        try:
            client = _client(server)
            first = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 8},
                                  deadline=10)
            key = first.body["key"]
            entry = cache_dir / key[:2] / f"{key}.json"
            forged = json.loads(entry.read_text())
            forged["payload"] = {"slept": 999, "nonce": "forged"}
            forged["key"] = "0" * 64  # address no longer matches content
            entry.write_text(json.dumps(forged))
            again = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 8},
                                  deadline=10)
            assert again.ok
            assert again.body["payload"] == first.body["payload"]
        finally:
            server.close()


class TestServerNeverDies:
    def test_mixed_hostile_load_leaves_server_healthy(self):
        server = _start(workers=2, queue_limit=4, breaker_threshold=3)
        try:
            outcomes = []
            lock = threading.Lock()

            def hostile(index):
                client = ReproClient(port=server.port, retries=4,
                                     backoff_base=0.02, backoff_cap=0.3)
                tasks = [
                    ("chaos-sleep", {"seconds": 0.05, "nonce": index}),
                    ("chaos-crash", {"nonce": index}),
                    ("chaos-sleep", {"seconds": 0.0, "nonce": index + 100}),
                ]
                for task, params in tasks:
                    response = client.submit(task, params, deadline=5)
                    with lock:
                        outcomes.append((task, response.status))

            threads = [threading.Thread(target=hostile, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            client = _client(server)
            assert client.healthy() and client.ready()
            # every sleep eventually succeeded; every crash was a
            # structured 500/503, never a hang or connection death
            for task, status in outcomes:
                if task == "chaos-sleep":
                    assert status == 200
                else:
                    assert status in (500, 503)
        finally:
            server.close()
