"""Property-based end-to-end test: for *randomly generated* programs,
*random* partitions and *every* implementation model, the refined
design is functionally equivalent to the original.

This is the strongest correctness statement the library makes: the
generator produces small but structurally varied specifications
(sequential chains with conditional arcs, concurrent pairs, loops,
arithmetic over several shared variables), hypothesis explores the
space, and each sample runs the full pipeline — access graph,
classification, topology planning, control/data/architecture
refinement, validation, co-simulation.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.models import ALL_MODELS
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import (
    assign,
    for_,
    if_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import Const, VarRef, var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable

VARS = ["va", "vb", "vc", "vd"]


@st.composite
def small_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return VarRef(draw(st.sampled_from(VARS + ["stim"])))
        return Const(draw(st.integers(min_value=-20, max_value=20)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    from repro.spec.expr import BinOp

    return BinOp(op, draw(small_exprs(depth=depth - 1)),
                 draw(small_exprs(depth=depth - 1)))


@st.composite
def small_stmts(draw, depth=1):
    kind = draw(st.integers(min_value=0, max_value=3 if depth else 1))
    target = draw(st.sampled_from(VARS))
    if kind <= 1:
        return assign(target, draw(small_exprs()))
    if kind == 2:
        return if_(
            draw(small_exprs()) > draw(st.integers(min_value=-5, max_value=5)),
            [draw(small_stmts(depth=0))],
            [draw(small_stmts(depth=0))],
        )
    return for_(
        "i",
        0,
        draw(st.integers(min_value=0, max_value=3)),
        [assign(target, var(target) + var("i"))],
    )


@st.composite
def specifications(draw):
    """2-4 leaves in a sequential chain with optional conditional arcs."""
    leaf_count = draw(st.integers(min_value=2, max_value=4))
    leaves = []
    for index in range(leaf_count):
        stmts = draw(
            st.lists(small_stmts(), min_size=1, max_size=3)
        )
        leaves.append(leaf(f"L{index}", *stmts))
    # final leaf publishes the observable state
    leaves.append(
        leaf(
            "Publish",
            assign("out", var(VARS[0]) + var(VARS[1])),
            assign("out2", var(VARS[2]) - var(VARS[3])),
        )
    )
    transitions = []
    names = [b.name for b in leaves]
    for source, target in zip(names, names[1:]):
        if draw(st.booleans()):
            # conditional arc pair exercising transition refinement
            pivot = draw(st.sampled_from(VARS))
            bound = draw(st.integers(min_value=-5, max_value=5))
            transitions.append(transition(source, var(pivot) > bound, target))
            transitions.append(transition(source, var(pivot) <= bound, target))
        else:
            transitions.append(transition(source, None, target))
    transitions.append(on_complete(names[-1]))
    top = seq("Chain", leaves, transitions=transitions)
    design = spec(
        "Generated",
        top,
        variables=[
            variable("stim", int_type(), init=3, role=Role.INPUT),
            variable("out", int_type(), init=0, role=Role.OUTPUT),
            variable("out2", int_type(), init=0, role=Role.OUTPUT),
        ]
        + [variable(name, int_type(), init=1) for name in VARS],
    )
    design.validate()

    # a random two-way partition over leaves and variables
    assignment = {}
    for name in names:
        assignment[name] = draw(st.sampled_from(["CPU", "HW"]))
    for name in VARS:
        assignment[name] = draw(st.sampled_from(["CPU", "HW"]))
    # force both components to exist so every model has real topology
    assignment[names[0]] = "CPU"
    assignment[VARS[0]] = "HW"
    partition = Partition.from_mapping(design, assignment, name="random")
    model = draw(st.sampled_from(ALL_MODELS))
    stim = draw(st.integers(min_value=-10, max_value=10))
    return design, partition, model, stim


class TestRefinementEquivalenceProperty:
    @given(specifications())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_any_refinement_is_equivalent(self, sample):
        design, partition, model, stim = sample
        refined = Refiner(design, partition, model).run()
        refined.spec.validate()
        report = check_equivalence(refined, inputs={"stim": stim})
        assert report.equivalent, report.describe()

    @given(specifications())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_refinement_never_mutates_the_input(self, sample):
        design, partition, model, _ = sample
        before = design.line_count()
        Refiner(design, partition, model).run()
        assert design.line_count() == before
