"""Tests for the differential fuzzing subsystem: the generator's
guarantees (validity, determinism, termination), the oracle stack, the
shrinker, corpus persistence, and the campaign driver."""

import pytest

from repro.errors import ReproError
from repro.experiments.fuzzing import (
    FuzzReport,
    replay_corpus_entry,
    run_fuzz,
)
from repro.fuzz import (
    CaseResult,
    CorpusEntry,
    GeneratorConfig,
    OracleFailure,
    check_roundtrip,
    check_walker_parity,
    generate_case,
    generate_input_vectors,
    iter_corpus,
    load_corpus_entry,
    restricted_assignment,
    run_all_oracles,
    save_corpus_entry,
    shrink_spec,
)
from repro.lang.parser import parse
from repro.lang.printer import print_specification
from repro.models import MODEL1
from repro.spec.stmt import CallStmt
from repro.spec.visitor import walk_statements


class TestGenerator:
    def test_deterministic_for_seed(self):
        first = generate_case(3)
        second = generate_case(3)
        assert print_specification(first.spec) == print_specification(
            second.spec
        )
        assert first.partition.assignment == second.partition.assignment

    def test_distinct_seeds_differ(self):
        assert print_specification(generate_case(0).spec) != (
            print_specification(generate_case(1).spec)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_specs_validate(self, seed):
        case = generate_case(seed)
        case.spec.validate()  # must not raise
        assert case.partition.p >= 1

    def test_config_changes_output(self):
        small = generate_case(2, GeneratorConfig(budget=10))
        big = generate_case(2, GeneratorConfig(budget=120, max_depth=4))
        assert big.spec.line_count() > small.spec.line_count()

    def test_signals_slice_is_not_refinable(self):
        case = generate_case(4, GeneratorConfig(signals=True, waits=True))
        assert not case.refinable

    def test_div_zero_slice_is_not_refinable(self):
        case = generate_case(4, GeneratorConfig(div_zero_probability=0.5))
        assert not case.refinable

    def test_default_config_is_refinable(self):
        assert generate_case(4).refinable

    def test_input_vectors_deterministic_and_complete(self):
        spec = generate_case(6).spec
        first = generate_input_vectors(spec, 6, count=4)
        second = generate_input_vectors(spec, 6, count=4)
        assert first == second
        assert len(first) == 4
        names = {v.name for v in spec.inputs()}
        for vector in first:
            assert set(vector) == names


class TestOracles:
    @pytest.mark.parametrize("seed", range(6))
    def test_clean_sweep_on_default_slice(self, seed):
        case = generate_case(seed)
        vectors = generate_input_vectors(case.spec, seed, count=2)
        result = run_all_oracles(case, vectors, models=[MODEL1])
        assert isinstance(result, CaseResult)
        assert result.ok, [f.describe() for f in result.failures]
        assert result.checks > 0
        assert not result.skipped

    def test_non_refinable_case_skips_refinement(self):
        case = generate_case(1, GeneratorConfig(signals=True, waits=True))
        vectors = generate_input_vectors(case.spec, 1, count=2)
        result = run_all_oracles(case, vectors, models=[MODEL1])
        assert result.ok, [f.describe() for f in result.failures]
        assert result.skipped  # refinement oracle did not run

    def test_roundtrip_oracle_accepts_generated_spec(self):
        assert check_roundtrip(generate_case(2).spec) == []

    def test_parity_oracle_runs_every_vector(self):
        spec = generate_case(2).spec
        vectors = generate_input_vectors(spec, 2, count=3)
        assert check_walker_parity(spec, vectors) == []

    def test_failure_describe_mentions_oracle_and_inputs(self):
        failure = OracleFailure(
            "parity", "output q: 1 vs 2", inputs={"in1": 3}
        )
        text = failure.describe()
        assert "[parity]" in text
        assert "output q: 1 vs 2" in text
        assert "in1" in text


def _has_call(spec) -> bool:
    return any(
        isinstance(stmt, CallStmt)
        for leaf in spec.leaf_behaviors()
        for stmt in walk_statements(leaf.stmt_body)
    )


class TestShrinker:
    def test_shrinks_while_preserving_predicate(self):
        # find a generated case with a subprogram call, then shrink to
        # (close to) the smallest spec that still contains one
        case = next(
            generate_case(seed)
            for seed in range(50)
            if _has_call(generate_case(seed).spec)
        )
        small = shrink_spec(case.spec, _has_call)
        small.validate()
        assert _has_call(small)
        assert len(print_specification(small)) < len(
            print_specification(case.spec)
        )

    def test_result_of_shrinking_still_prints_and_parses(self):
        case = next(
            generate_case(seed)
            for seed in range(50)
            if _has_call(generate_case(seed).spec)
        )
        small = shrink_spec(case.spec, _has_call)
        reparsed = parse(print_specification(small))
        reparsed.validate()

    def test_predicate_never_true_returns_original(self):
        spec = generate_case(0).spec
        result = shrink_spec(spec, lambda s: True)
        # every candidate is "interesting", so shrinking bottoms out at
        # a tiny, still-valid spec
        result.validate()

    def test_restricted_assignment_drops_vanished_names(self):
        case = generate_case(5)
        assignment = dict(case.partition.assignment)
        shrunk = shrink_spec(case.spec, lambda s: True)
        projected = restricted_assignment(shrunk, assignment)
        top_names = {
            b.name for b in getattr(shrunk.top, "subs", ())
        } | {v.name for v in shrunk.variables} | {shrunk.top.name}
        assert set(projected) <= top_names | set(assignment)


class TestCorpusPersistence:
    def _entry(self):
        return CorpusEntry(
            name="sample_case",
            bug="stale temporary on inout write-back",
            spec_text=print_specification(generate_case(0).spec),
            partition={"b1": "PROC", "g1": "ASIC"},
            input_vectors=[{"in1": 5}, {"in1": -1}],
        )

    def test_save_load_roundtrip(self, tmp_path):
        entry = self._entry()
        path = save_corpus_entry(str(tmp_path), entry)
        loaded = load_corpus_entry(path)
        assert loaded.name == entry.name
        assert loaded.bug == entry.bug
        assert loaded.partition == entry.partition
        assert loaded.input_vectors == [{"in1": 5}, {"in1": -1}]
        loaded.load_spec().validate()

    def test_empty_vectors_are_not_persisted(self, tmp_path):
        entry = self._entry()
        entry.input_vectors = [{}, {"in1": 5}, {}]
        path = save_corpus_entry(str(tmp_path), entry)
        assert load_corpus_entry(path).input_vectors == [{"in1": 5}]

    def test_iter_corpus_sorted_by_name(self, tmp_path):
        for name in ("zebra", "alpha"):
            entry = self._entry()
            entry.name = name
            save_corpus_entry(str(tmp_path), entry)
        assert [e.name for e in iter_corpus(str(tmp_path))] == [
            "alpha", "zebra"
        ]

    def test_replay_flags_unparseable_entry(self):
        entry = CorpusEntry(
            name="broken", bug="x", spec_text="not a specification"
        )
        failures = replay_corpus_entry(entry, models=[MODEL1])
        assert failures and failures[0].oracle == "corpus"
        assert "broken" in failures[0].detail


class TestCampaign:
    def test_report_is_deterministic(self):
        first = run_fuzz(seed=11, count=6, models=[MODEL1], corpus=None)
        second = run_fuzz(seed=11, count=6, models=[MODEL1], corpus=None)
        assert first.render() == second.render()
        assert first.as_json() == second.as_json()

    def test_clean_campaign_reports_ok(self):
        report = run_fuzz(seed=0, count=10, models=[MODEL1], corpus=None)
        assert isinstance(report, FuzzReport)
        assert report.ok, report.render()
        assert report.checks > 0
        assert "all oracles passed" in report.render()

    def test_slices_are_interleaved(self):
        report = run_fuzz(seed=0, count=10, models=[MODEL1], corpus=None)
        assert {s.name for s in report.slices} == {
            "default", "signals", "div-zero"
        }

    def test_model_names_resolved(self):
        report = run_fuzz(seed=0, count=1, models=["Model2"], corpus=None)
        assert report.models == ["Model2"]

    def test_campaign_replays_corpus(self):
        report = run_fuzz(seed=0, count=1, models=[MODEL1],
                          corpus="tests/corpus")
        assert report.corpus_entries >= 3
        assert report.corpus_failures == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            run_fuzz(seed=0, count=1, models=["Model9"], corpus=None)
