"""Tests for architecture-related refinement: memory servers, arbiters
(Figure 7) and bus interfaces (Figure 8)."""

import pytest

from repro.apps.figures import (
    figure7_specification,
    figure8_specification,
)
from repro.errors import RefinementError
from repro.models import ALL_MODELS, MODEL1, MODEL2, MODEL3, MODEL4
from repro.partition import Partition
from repro.refine import NamePool, Refiner, build_arbiter
from repro.sim import Simulator
from repro.sim.equivalence import check_equivalence
from repro.spec.behavior import CompositeBehavior, LeafBehavior


class TestArbiterBehavior:
    def test_requires_a_master(self):
        with pytest.raises(RefinementError):
            build_arbiter("b1", [], NamePool())

    def test_single_master_granter_allowed(self):
        """Model4's interchange lock may have a single client."""
        arbiter = build_arbiter("b1", ["only"], NamePool())
        assert arbiter.daemon

    def test_arbiter_name_and_daemon(self):
        arbiter = build_arbiter("b1", ["B1", "B2"], NamePool())
        assert arbiter.name == "b1_arbiter"
        assert arbiter.daemon

    def test_priority_order_documented(self):
        arbiter = build_arbiter("b1", ["B1", "B2", "B3"], NamePool())
        assert "B1 > B2 > B3" in arbiter.doc


class TestFigure7ArbiterInsertion:
    def make(self):
        design_spec = figure7_specification()
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec,
            {"B1": "PROC", "B2": "PROC", "x": "ASIC", "y": "ASIC"},
        )
        return Refiner(design_spec, partition, MODEL1).run()

    def test_arbiter_inserted_for_shared_bus(self):
        design = self.make()
        assert "b1_arbiter" in design.netlist.arbiters
        arbiter = design.netlist.arbiters["b1_arbiter"]
        assert set(arbiter.masters) == {"B1", "B2"}

    def test_req_ack_signals_exist(self):
        design = self.make()
        names = {v.name for v in design.spec.variables}
        assert {"b1_req_B1", "b1_ack_B1", "b1_req_B2", "b1_ack_B2"} <= names

    def test_concurrent_masters_serialise_correctly(self):
        """Both concurrent readers loop 3 deep over the shared bus; the
        arbiter must interleave them without corruption."""
        design = self.make()
        check_equivalence(design).raise_if_mismatched()

    def test_single_master_bus_gets_no_arbiter(self):
        design_spec = figure7_specification()
        partition = Partition.from_mapping(
            design_spec,
            {"B1": "PROC", "B2": "ASIC", "x": "PROC", "y": "ASIC"},
        )
        design = Refiner(design_spec, partition, MODEL2).run()
        # each local bus has exactly one master: no arbiters at all
        assert not design.netlist.arbiters


class TestFigure8BusInterfaces:
    def make(self, model=MODEL4):
        design_spec = figure8_specification()
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec, {"B1": "C1", "B2": "C2", "y": "C2"}
        )
        return Refiner(design_spec, partition, model).run()

    def test_interfaces_inserted(self):
        design = self.make()
        interface_names = set(design.netlist.interfaces)
        # C1 only reads remotely (outbound); C2 owns y (inbound)
        assert "BI_C1_out" in interface_names
        assert "BI_C2_in" in interface_names

    def test_no_spurious_interfaces(self):
        design = self.make()
        # C1 has no resident variables accessed remotely: no BI_C1_in;
        # C2's behaviors never access remote variables: no BI_C2_out
        assert "BI_C1_in" not in design.netlist.interfaces
        assert "BI_C2_out" not in design.netlist.interfaces

    def test_remote_access_chain_is_equivalent(self):
        design = self.make()
        check_equivalence(design).raise_if_mismatched()

    def test_interchange_lock_arbiter_exists(self):
        design = self.make()
        interchange = design.plan.buses_with_role(
            __import__("repro.models", fromlist=["BusRole"]).BusRole.INTERCHANGE
        )[0]
        assert f"{interchange.name}_arbiter" in design.netlist.arbiters


class TestMemoryBehaviors:
    def test_single_port_memory_is_leaf_daemon(self):
        design_spec = figure8_specification()
        partition = Partition.from_mapping(
            design_spec, {"B1": "C1", "B2": "C2", "y": "C2"}
        )
        design = Refiner(design_spec, partition, MODEL1).run()
        memory = design.spec.find_behavior("Gmem2")
        assert isinstance(memory, LeafBehavior)
        assert memory.daemon
        assert any(d.name == "y" for d in memory.decls)

    def test_multiport_memory_is_concurrent_composite(self):
        from repro.apps.figures import figure2_partition, figure2_specification

        design_spec = figure2_specification()
        partition = figure2_partition(design_spec)
        design = Refiner(design_spec, partition, MODEL3).run()
        gmem = design.spec.find_behavior("Gmem1")
        assert isinstance(gmem, CompositeBehavior)
        assert gmem.is_concurrent
        assert len(gmem.subs) == 2  # one server per port
        assert any(d.name == "v4" for d in gmem.decls)

    def test_memory_keeps_initial_values(self):
        design_spec = figure8_specification()
        partition = Partition.from_mapping(
            design_spec, {"B1": "C1", "B2": "C2", "y": "C2"}
        )
        design = Refiner(design_spec, partition, MODEL4).run()
        memory = design.spec.find_behavior("Lmem2")
        decl = next(d for d in memory.decls if d.name == "y")
        assert decl.init == 5  # the original initial value survives


class TestModel4DualPortLocal:
    def test_resident_and_remote_paths_coexist(self):
        """B2 writes y over the local bus while B1's read arrives through
        the interface chain into the memory's second port."""
        design_spec = figure8_specification()
        partition = Partition.from_mapping(
            design_spec, {"B1": "C1", "B2": "C2", "y": "C2"}
        )
        design = Refiner(design_spec, partition, MODEL4).run()
        lmem = design.spec.find_behavior("Lmem2")
        assert isinstance(lmem, CompositeBehavior)
        assert len(lmem.subs) == 2
        check_equivalence(design).raise_if_mismatched()
