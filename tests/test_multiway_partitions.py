"""Generality beyond the paper's two-way examples: three-component
partitions across all four implementation models.

Exercises Model3's p + p*p dedicated-bus grid and Model4's interchange
shared by three bus interfaces (with the global remote-transaction
lock keeping the two-hop message paths deadlock-free).
"""

import pytest

from repro.models import ALL_MODELS, MODEL3, MODEL4, BusRole
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import (
    assign,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable


@pytest.fixture(scope="module")
def three_way():
    a = leaf("A", assign("x", var("inp") + 1), assign("y", var("x") * 2))
    b = leaf("B", assign("y", var("y") + var("x")), assign("z", var("y") - 3))
    c = leaf("C", assign("out", var("z") + var("x") + var("y")))
    top = seq(
        "T",
        [a, b, c],
        transitions=[
            transition("A", None, "B"),
            transition("B", None, "C"),
            on_complete("C"),
        ],
    )
    design = spec(
        "ThreeWay",
        top,
        variables=[
            variable("inp", int_type(), init=5, role=Role.INPUT),
            variable("out", int_type(), init=0, role=Role.OUTPUT),
            variable("x", int_type(), init=0),
            variable("y", int_type(), init=0),
            variable("z", int_type(), init=0),
        ],
    )
    design.validate()
    partition = Partition.from_mapping(
        design,
        {"A": "P1", "B": "P2", "C": "P3", "x": "P1", "y": "P2", "z": "P3"},
        name="threeway",
    )
    return design, partition


class TestThreeWayRefinement:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("inp", [5, -2, 0])
    def test_equivalent(self, three_way, model, inp):
        design, partition = three_way
        refined = Refiner(design, partition, model).run()
        check_equivalence(refined, inputs={"inp": inp}).raise_if_mismatched()

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_bus_counts_within_formula(self, three_way, model):
        design, partition = three_way
        refined = Refiner(design, partition, model).run()
        assert refined.netlist.bus_count <= model.max_buses(3)

    def test_model3_has_dedicated_grid(self, three_way):
        design, partition = three_way
        plan = MODEL3.build_plan(design, partition)
        # every variable is global here (each is read downstream), so:
        # 3 global memories, each with 3 ports, 9 dedicated buses
        dedicated = plan.buses_with_role(BusRole.DEDICATED)
        assert len(dedicated) == 9
        for memory in plan.memories.values():
            assert memory.port_count == 3

    def test_model4_three_interfaces_one_interchange(self, three_way):
        design, partition = three_way
        refined = Refiner(design, partition, MODEL4).run()
        interchange = refined.plan.buses_with_role(BusRole.INTERCHANGE)
        assert len(interchange) == 1
        iface = refined.plan.buses_with_role(BusRole.IFACE)
        assert len(iface) == 3
        # every component both requests remotely and serves residents
        names = set(refined.netlist.interfaces)
        for component in ("P1", "P2", "P3"):
            assert f"BI_{component}_out" in names or (
                f"BI_{component}_in" in names
            )

    def test_model4_cross_route_spans_exactly_three_buses(self, three_way):
        design, partition = three_way
        plan = MODEL4.build_plan(design, partition)
        route = plan.route("P1", "z")  # z homed on P3
        assert len(route) == 3
        roles = [plan.buses[name].role for name in route]
        assert roles == [BusRole.IFACE, BusRole.INTERCHANGE, BusRole.IFACE]
