"""Unit tests for the DES kernel."""

import pytest

from repro.errors import SimulationError, SimulationLimitExceeded
from repro.sim.kernel import Join, Kernel, WaitCondition, WaitDelay


class TestSignals:
    def test_register_and_read(self):
        k = Kernel()
        k.register_signal("s", 0)
        assert k.read_signal("s") == 0

    def test_duplicate_registration(self):
        k = Kernel()
        k.register_signal("s", 0)
        with pytest.raises(SimulationError):
            k.register_signal("s", 1)

    def test_unknown_signal(self):
        k = Kernel()
        with pytest.raises(SimulationError):
            k.read_signal("nope")
        with pytest.raises(SimulationError):
            k.write_signal("nope", 1)

    def test_write_is_deferred_until_delta(self):
        k = Kernel()
        k.register_signal("s", 0)
        seen = []

        def proc():
            k.write_signal("s", 1)
            seen.append(("before", k.read_signal("s")))
            yield WaitDelay(1)
            seen.append(("after", k.read_signal("s")))

        k.spawn("p", proc())
        k.run()
        assert seen == [("before", 0), ("after", 1)]


class TestScheduling:
    def test_process_runs_to_completion(self):
        k = Kernel()
        log = []

        def proc():
            log.append("a")
            yield WaitDelay(5)
            log.append("b")

        p = k.spawn("p", proc())
        k.run()
        assert log == ["a", "b"]
        assert p.finished
        assert k.now == 5

    def test_two_timed_processes_order(self):
        k = Kernel()
        log = []

        def slow():
            yield WaitDelay(10)
            log.append("slow")

        def fast():
            yield WaitDelay(1)
            log.append("fast")

        k.spawn("slow", slow())
        k.spawn("fast", fast())
        k.run()
        assert log == ["fast", "slow"]
        assert k.now == 10

    def test_wait_condition_wakes_on_change(self):
        k = Kernel()
        k.register_signal("go", 0)
        log = []

        def waiter():
            yield WaitCondition(lambda: k.read_signal("go") == 1, {"go"})
            log.append("woken")

        def driver():
            yield WaitDelay(3)
            k.write_signal("go", 1)

        k.spawn("waiter", waiter())
        k.spawn("driver", driver())
        k.run()
        assert log == ["woken"]

    def test_wait_condition_already_true_does_not_block(self):
        k = Kernel()
        k.register_signal("go", 1)
        log = []

        def waiter():
            yield WaitCondition(lambda: k.read_signal("go") == 1, {"go"})
            log.append("done")

        k.spawn("w", waiter())
        k.run()
        assert log == ["done"]

    def test_blocked_process_reported(self):
        k = Kernel()
        k.register_signal("never", 0)

        def waiter():
            yield WaitCondition(lambda: k.read_signal("never") == 1, {"never"})

        p = k.spawn("w", waiter())
        k.run()  # quiescent with w blocked
        assert not p.finished
        assert p in k.blocked_processes()

    def test_join(self):
        k = Kernel()
        log = []

        def child(tag, delay):
            yield WaitDelay(delay)
            log.append(tag)

        def parent():
            kids = [k.spawn("c1", child("c1", 5)), k.spawn("c2", child("c2", 2))]
            yield Join(kids)
            log.append("parent")

        k.spawn("parent", parent())
        k.run()
        assert log == ["c2", "c1", "parent"]

    def test_join_already_finished(self):
        k = Kernel()
        log = []

        def quick():
            log.append("q")
            return
            yield  # pragma: no cover

        def parent():
            child = k.spawn("q", quick())
            yield WaitDelay(1)
            yield Join([child])
            log.append("p")

        k.spawn("p", parent())
        k.run()
        assert log == ["q", "p"]

    def test_max_steps_guard(self):
        k = Kernel()

        def spinner():
            while True:
                yield WaitDelay(1)

        k.spawn("spin", spinner())
        with pytest.raises(SimulationLimitExceeded):
            k.run(max_steps=100)

    def test_failed_process_raises_simulation_error(self):
        k = Kernel()

        def bad():
            yield WaitDelay(1)
            raise ValueError("boom")

        k.spawn("bad", bad())
        with pytest.raises(SimulationError, match="boom"):
            k.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            WaitDelay(-1)


class TestDeltaCycles:
    def test_no_change_write_does_not_wake(self):
        k = Kernel()
        k.register_signal("s", 0)
        log = []

        def waiter():
            yield WaitCondition(lambda: k.read_signal("s") == 1, {"s"})
            log.append("woken")

        def writer():
            k.write_signal("s", 0)  # no actual change
            yield WaitDelay(1)

        k.spawn("waiter", waiter())
        k.spawn("writer", writer())
        k.run()
        assert log == []

    def test_handshake_between_processes(self):
        """Two processes complete a 4-phase handshake entirely in delta
        cycles (no time passes)."""
        k = Kernel()
        k.register_signal("req", 0)
        k.register_signal("ack", 0)
        log = []

        def master():
            k.write_signal("req", 1)
            yield WaitCondition(lambda: k.read_signal("ack") == 1, {"ack"})
            log.append("master saw ack")
            k.write_signal("req", 0)
            yield WaitCondition(lambda: k.read_signal("ack") == 0, {"ack"})
            log.append("master done")

        def slave():
            yield WaitCondition(lambda: k.read_signal("req") == 1, {"req"})
            k.write_signal("ack", 1)
            yield WaitCondition(lambda: k.read_signal("req") == 0, {"req"})
            k.write_signal("ack", 0)
            log.append("slave done")

        k.spawn("master", master())
        k.spawn("slave", slave())
        k.run()
        assert "master done" in log
        assert "slave done" in log
        assert k.now == 0.0


class TestWatchdog:
    """KernelLimits, the deadlock reporter, and the diagnostic trace."""

    def test_deadlock_error_for_unfinished_required(self):
        from repro.errors import DeadlockError

        k = Kernel()
        k.register_signal("never", 0)

        def stuck():
            yield WaitCondition(
                lambda: k.read_signal("never") == 1, {"never"}, label="until never=1"
            )

        p = k.spawn("stuck", stuck())
        with pytest.raises(DeadlockError) as excinfo:
            k.run(required=(p,))
        err = excinfo.value
        assert "stuck" in str(err)
        assert "never" in str(err)  # sensitivity list is named
        assert err.required == ("stuck",)
        assert any(info.name == "stuck" for info in err.blocked)

    def test_quiescence_without_required_is_not_an_error(self):
        k = Kernel()
        k.register_signal("never", 0)

        def daemon():
            yield WaitCondition(lambda: k.read_signal("never") == 1, {"never"})

        k.spawn("daemon", daemon())
        k.run()  # no required processes: plain quiescence

    def test_wait_condition_true_at_suspension_resumes_same_delta(self):
        k = Kernel()
        k.register_signal("go", 1)
        log = []

        def waiter():
            log.append(("before", k.now))
            yield WaitCondition(lambda: k.read_signal("go") == 1, {"go"})
            log.append(("after", k.now))

        k.spawn("w", waiter())
        k.run()
        assert log == [("before", 0.0), ("after", 0.0)]

    def test_zero_delay_wait_runs_in_same_timestep(self):
        k = Kernel()
        log = []

        def proc():
            yield WaitDelay(0)
            log.append(k.now)

        k.spawn("p", proc())
        k.run()
        assert log == [0.0]

    def test_delta_cycle_storm_trips_max_delta(self):
        from repro.sim.kernel import KernelLimits

        k = Kernel()
        k.register_signal("a", 0)
        k.register_signal("b", 0)

        def ping():
            val = 0
            while True:
                val = 1 - val
                k.write_signal("a", val)
                yield WaitCondition(
                    lambda want=val: k.read_signal("b") == want, {"b"}
                )

        def pong():
            seen = 0
            while True:
                yield WaitCondition(
                    lambda old=seen: k.read_signal("a") != old, {"a"}
                )
                seen = k.read_signal("a")
                k.write_signal("b", seen)

        k.spawn("ping", ping())
        k.spawn("pong", pong())
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            k.run(limits=KernelLimits(max_delta=50))
        assert excinfo.value.limit == "max_delta"
        assert "max_delta" in str(excinfo.value)

    def test_limit_error_names_max_steps_and_carries_trace(self):
        k = Kernel()

        def spinner():
            while True:
                yield WaitDelay(1)

        k.spawn("spin", spinner())
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            k.run(max_steps=10)
        assert excinfo.value.limit == "max_steps"
        assert "max_steps=10" in str(excinfo.value)
        assert excinfo.value.trace  # ring buffer contents attached

    def test_trace_ring_buffer_is_bounded(self):
        k = Kernel(trace_depth=4)

        def proc():
            for _ in range(20):
                yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert len(k.format_trace()) <= 4
