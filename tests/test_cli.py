"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def medical_file(tmp_path):
    from repro.apps.medical import medical_specification
    from repro.lang.printer import print_specification

    path = tmp_path / "medical.spec"
    path.write_text(print_specification(medical_specification()))
    return str(path)


class TestStats:
    def test_default_medical(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "behaviors: 16" in out
        assert "data-access channels: 52" in out

    def test_from_file(self, capsys, medical_file):
        assert main(["stats", medical_file]) == 0
        assert "MedicalBVM" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["stats", "/no/such/file.spec"]) == 2


class TestPrint:
    def test_print_parses_back(self, capsys):
        from repro.lang.parser import parse

        assert main(["print"]) == 0
        text = capsys.readouterr().out
        parse(text).validate()


class TestSimulate:
    def test_default(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "display_out" in out

    def test_with_inputs(self, capsys):
        assert main(["simulate", "--input", "patient_profile=12",
                     "--input", "num_cycles=1"]) == 0
        assert "alarm_out = 0" in capsys.readouterr().out

    def test_bad_input_format(self, capsys):
        assert main(["simulate", "--input", "oops"]) == 2
        assert "name=value" in capsys.readouterr().err


class TestPartition:
    @pytest.mark.parametrize("algorithm", ["greedy", "kl", "annealed"])
    def test_algorithms(self, capsys, algorithm):
        assert main(["partition", "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "cost:" in out


class TestRefine:
    def test_refine_writes_output(self, capsys, tmp_path):
        out_file = tmp_path / "refined.spec"
        assert main([
            "refine", "--design", "Design1", "--model", "Model2",
            "-o", str(out_file),
        ]) == 0
        assert out_file.exists()
        from repro.lang.parser import parse

        parse(out_file.read_text()).validate()

    def test_unknown_design(self, capsys):
        assert main(["refine", "--design", "Design9"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_refine_from_file(self, capsys, medical_file, tmp_path):
        assert main([
            "refine", medical_file, "--design", "Design3",
            "--model", "Model4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Model4" in out


class TestVerify:
    def test_equivalent(self, capsys):
        assert main(["verify", "--design", "Design2", "--model", "Model1"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out


class TestExportC:
    def test_to_stdout(self, capsys):
        assert main(["export-c"]) == 0
        out = capsys.readouterr().out
        assert "int main(void)" in out
        assert "beh_BVM" in out

    def test_to_file_with_inputs(self, capsys, tmp_path):
        out_file = tmp_path / "bvm.c"
        assert main(["export-c", "--input", "patient_profile=12",
                     "-o", str(out_file)]) == 0
        assert "patient_profile = 12" in out_file.read_text()


class TestExportVhdl:
    def test_functional_model(self, capsys):
        assert main(["export-vhdl"]) == 0
        out = capsys.readouterr().out
        assert "entity MedicalBVM is" in out

    def test_refined_design(self, capsys, tmp_path):
        out_file = tmp_path / "asic.vhd"
        assert main(["export-vhdl", "--design", "Design2",
                     "--model", "Model2", "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "entity MedicalBVM_Model2 is" in text
        assert "procedure MST_send_b" in text


class TestFigures:
    def test_figure9(self, capsys):
        assert main(["figure9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "paper" in out

    def test_figure9_no_paper(self, capsys):
        assert main(["figure9", "--no-paper"]) == 0
        assert "(paper)" not in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        assert "Figure 10" in capsys.readouterr().out


class TestKernelLimitFlags:
    def test_simulate_accepts_limit_flags(self, capsys):
        assert main(["simulate", "--max-steps", "1000",
                     "--max-delta", "500"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_verify_limit_breach_names_the_limit(self, capsys):
        assert main(["verify", "--design", "Design1", "--model", "Model4",
                     "--max-steps", "500"]) == 2
        assert "max_steps=500" in capsys.readouterr().err


class TestVerifyProtocol:
    def test_timeout_protocol_is_equivalent(self, capsys):
        assert main(["verify", "--design", "Design1", "--model", "Model2",
                     "--protocol", "handshake-timeout"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out


class TestPartitionSeed:
    def test_annealed_seed_flag(self, capsys):
        assert main(["partition", "--algorithm", "annealed",
                     "--seed", "7"]) == 0
        assert "cost:" in capsys.readouterr().out


class TestRobustness:
    def test_single_cell_campaign(self, capsys, tmp_path):
        out_file = tmp_path / "campaign.txt"
        assert main(["robustness", "--design", "Design1",
                     "--model", "Model2", "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Robustness campaign" in out
        assert "unexpected: 0" in out
        assert out_file.read_text().startswith("Robustness campaign")

    def test_no_output_file(self, capsys):
        assert main(["robustness", "--design", "Design1",
                     "--model", "Model1", "-o", ""]) == 0
        assert "written to" not in capsys.readouterr().out


class TestProfile:
    def test_table_and_json(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "profile.json"
        assert main(["profile", "--design", "Design1",
                     "--model", "Model2", "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "repro profile: MedicalBVM Design1 Model2" in out
        assert "bus transactions" in out
        assert "simulate-refined" in out
        assert "verify: EQUIVALENT" in out
        data = json.loads(out_file.read_text())
        assert data["equivalent"] is True
        assert data["refined_metrics"]["bus_transactions"] > 0
        assert set(data["phases_seconds"]) == {
            "refine", "simulate-original", "simulate-refined", "verify"
        }

    def test_no_verify_skips_phase(self, capsys):
        assert main(["profile", "--design", "Design1", "--no-verify",
                     "-o", ""]) == 0
        out = capsys.readouterr().out
        assert "verify: not run" in out
        assert "written to" not in out

    def test_unknown_design(self, capsys):
        assert main(["profile", "--design", "Design9", "-o", ""]) == 2

    def test_json_flag_prints_json(self, capsys):
        import json

        assert main(["profile", "--design", "Design1", "--json",
                     "-o", ""]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "Design1"
        assert "refine_procedure_seconds" in data


class TestTrace:
    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        out_file = tmp_path / "trace.json"
        assert main(["trace", "--design", "Design1", "--model", "Model2",
                     "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        # one span per pipeline stage and per refinement procedure
        for name in ("parse", "validate", "partition", "refine",
                     "estimate", "export-c", "export-vhdl",
                     "simulate-original", "simulate-refined",
                     "control", "data", "memory", "businterface",
                     "arbiter", "emitter", "assemble"):
            assert name in out, f"missing span {name}"
        data = json.loads(out_file.read_text())
        assert validate_chrome_trace(data) >= 16
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "emitter" in names and "simulate-refined" in names

    def test_trace_without_output_file(self, capsys):
        assert main(["trace", "--design", "Design1", "-o", ""]) == 0
        assert "written to" not in capsys.readouterr().out


class TestExplain:
    def test_explain_single_line(self, capsys):
        assert main(["explain", "1", "--design", "Design1"]) == 0
        out = capsys.readouterr().out
        assert "line 1:" in out
        assert "origin:" in out

    def test_explain_file_colon_line(self, capsys):
        assert main(["explain", "refined.sp:3", "--design", "Design1"]) == 0
        assert "line 3:" in capsys.readouterr().out

    def test_explain_all_summary(self, capsys):
        assert main(["explain", "--design", "Design1", "--all"]) == 0
        out = capsys.readouterr().out
        assert "lines" in out and "emitter" in out

    def test_explain_check_passes(self, capsys):
        assert main(["explain", "--design", "Design1", "--model", "Model3",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "resolve to a refinement step" in out
        assert "provenance:" in out

    def test_explain_requires_a_line(self, capsys):
        assert main(["explain", "--design", "Design1"]) == 2

    def test_explain_rejects_bad_line(self, capsys):
        assert main(["explain", "abc", "--design", "Design1"]) == 2


class TestSimulateVcd:
    def test_vcd_of_refined_design_round_trips(self, capsys, tmp_path):
        from repro.obs.vcd import parse_vcd

        refined_file = tmp_path / "refined.sp"
        assert main(["refine", "--design", "Design1", "--model", "Model1",
                     "-o", str(refined_file)]) == 0
        vcd_file = tmp_path / "waves.vcd"
        assert main(["simulate", str(refined_file),
                     "--vcd", str(vcd_file)]) == 0
        out = capsys.readouterr().out
        assert "VCD waveform written" in out
        data = parse_vcd(vcd_file.read_text())
        assert data.signals
        assert sum(len(s.changes) for s in data.signals.values()) > 0


class TestFigure10Breakdown:
    def test_breakdown_table(self, capsys):
        assert main(["figure10", "--breakdown", "--no-paper"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10 breakdown" in out
        assert "emitter" in out and "assemble" in out


class TestFuzz:
    def test_small_campaign_passes(self, capsys, tmp_path):
        report_file = tmp_path / "fuzz.txt"
        assert main(["fuzz", "--seed", "0", "--count", "4",
                     "--model", "Model1", "--corpus", "",
                     "-o", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign" in out
        assert "all oracles passed" in out
        assert "fuzz campaign" in report_file.read_text()

    def test_fuzz_json_report(self, capsys):
        import json

        assert main(["fuzz", "--seed", "1", "--count", "2", "--json",
                     "--model", "Model1", "--corpus", "", "-o", ""]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["count"] == 2

    def test_corpus_replay_via_cli(self, capsys):
        assert main(["fuzz", "--count", "0", "--model", "Model1",
                     "-o", ""]) == 0
        assert "corpus replay" in capsys.readouterr().out

    def test_trace_export(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "fuzz_trace.json"
        assert main(["fuzz", "--count", "2", "--model", "Model1",
                     "--corpus", "", "-o", "",
                     "--trace", str(trace_file)]) == 0
        events = json.loads(trace_file.read_text())
        assert any(e.get("name", "").startswith("case-")
                   for e in events.get("traceEvents", events))
