"""Parser/printer tests, including full round-trip properties.

The printed concrete syntax is the Figure 10 size metric, so the
printer must be deterministic and the parser must accept everything the
printer emits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.lang.parser import parse, parse_expression
from repro.lang.printer import print_expr, print_specification
from repro.spec.behavior import CompositionMode
from repro.spec.builder import (
    assign,
    call,
    conc,
    for_,
    if_,
    leaf,
    sassign,
    seq,
    spec,
    transition,
    wait_for,
    wait_on,
    wait_until,
    while_,
)
from repro.spec.expr import BinOp, Const, Index, UnaryOp, VarRef, var
from repro.spec.stmt import Assign, SignalAssign, Wait
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import (
    BIT,
    BOOL,
    EnumType,
    array_of,
    bits,
    int_type,
)
from repro.spec.variable import Role, signal, variable


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == BinOp("+", Const(1), BinOp("*", Const(2), Const(3)))

    def test_precedence_and_over_or(self):
        expr = parse_expression("a or b and c")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_comparison_binds_tighter_than_and(self):
        expr = parse_expression("x > 1 and y < 2")
        assert expr.op == "and"
        assert expr.left.op == ">"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary(self):
        assert parse_expression("-x") == UnaryOp("-", VarRef("x"))
        assert parse_expression("not p") == UnaryOp("not", VarRef("p"))
        assert parse_expression("abs x") == UnaryOp("abs", VarRef("x"))

    def test_index(self):
        expr = parse_expression("a[i + 1]")
        assert isinstance(expr, Index)

    def test_enum_literal(self):
        assert parse_expression("'busy'") == Const("busy")

    def test_left_associativity(self):
        expr = parse_expression("1 - 2 - 3")
        assert expr == BinOp("-", BinOp("-", Const(1), Const(2)), Const(3))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")


def example_specification():
    """A specification exercising every construct the printer knows."""
    state = EnumType("state_t", ("idle", "run", "halt"))
    init = leaf(
        "Init",
        assign("x", 0),
        assign("mode", "idle"),
        sassign("ready", 1),
    )
    work = leaf(
        "Work",
        if_(
            var("x") > 1,
            [assign("x", var("x") - 1)],
            [assign("x", var("x") + 2)],
        ),
        while_(var("x") < 10, [assign("x", var("x") + 3)], expected=4),
        for_("i", 0, 7, [assign("buf", var("buf"))]),
        wait_until(var("go").eq(1)),
        wait_on("clk"),
        wait_for(5),
        call("helper", var("x"), "x"),
    )
    done = leaf("Done", assign("mode", "halt"))
    stage = seq(
        "Stage",
        [init, work, done],
        transitions=[
            transition("Init", None, "Work"),
            transition("Work", var("x") >= 10, "Done"),
            transition("Work", var("x") < 0, "Init"),
        ],
    )
    monitor = leaf("Monitor", wait_until(var("ready").eq(1)))
    top = conc("Top", [stage, monitor])
    helper = Subprogram(
        "helper",
        params=[
            Param("a", int_type(16)),
            Param("b", int_type(16), Direction.OUT),
        ],
        stmt_body=[assign("b", var("a") * 2)],
        decls=[variable("scratch", int_type(16))],
    )
    return spec(
        "Everything",
        top,
        variables=[
            variable("x", int_type(16), init=0),
            variable("mode", state, init="idle"),
            variable("buf", array_of(int_type(8), 8)),
            signal("ready", BIT, init=0),
            signal("clk", BIT, init=0),
            signal("go", bits(1), init=0),
            variable("sensor", int_type(12), role=Role.INPUT),
            variable("result", int_type(24), role=Role.OUTPUT),
            variable("flag", BOOL, init=True),
        ],
        subprograms=[helper],
    )


class TestRoundTrip:
    def test_full_roundtrip_reprints_identically(self):
        original = example_specification()
        original.validate()
        text1 = print_specification(original)
        reparsed = parse(text1)
        reparsed.validate()
        text2 = print_specification(reparsed)
        assert text1 == text2

    def test_roundtrip_preserves_stats(self):
        original = example_specification()
        reparsed = parse(print_specification(original))
        assert original.stats().as_dict() == reparsed.stats().as_dict()

    def test_roundtrip_preserves_structure(self):
        original = example_specification()
        reparsed = parse(print_specification(original))
        assert [b.name for b in original.behaviors()] == [
            b.name for b in reparsed.behaviors()
        ]
        top = reparsed.top
        assert top.mode is CompositionMode.CONCURRENT
        stage = reparsed.find_behavior("Stage")
        assert len(stage.transitions) == 3
        assert stage.transitions[1].condition == (var("x") >= 10)

    def test_roundtrip_preserves_roles(self):
        reparsed = parse(print_specification(example_specification()))
        assert reparsed.global_variable("sensor").role is Role.INPUT
        assert reparsed.global_variable("result").role is Role.OUTPUT

    def test_roundtrip_preserves_enum(self):
        reparsed = parse(print_specification(example_specification()))
        mode = reparsed.global_variable("mode")
        assert isinstance(mode.dtype, EnumType)
        assert mode.dtype.literals == ("idle", "run", "halt")
        assert mode.init == "idle"

    def test_roundtrip_preserves_subprogram(self):
        reparsed = parse(print_specification(example_specification()))
        helper = reparsed.subprograms["helper"]
        assert helper.params[1].direction is Direction.OUT
        assert len(helper.decls) == 1

    def test_nondefault_initial_roundtrips(self):
        top = seq("T", [leaf("A"), leaf("B")], initial="B")
        design = spec("S", top)
        reparsed = parse(print_specification(design))
        assert reparsed.top.initial == "B"


class TestParseErrors:
    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("specification S is behavior A is leaf begin null;")

    def test_unknown_type_name(self):
        with pytest.raises(ParseError):
            parse(
                "specification S is variable x : mystery_t;\n"
                "behavior A is leaf begin null; end behavior;\n"
                "end specification;"
            )

    def test_duplicate_type_decl(self):
        with pytest.raises(ParseError):
            parse(
                "specification S is type t is ('a'); type t is ('b');\n"
                "behavior A is leaf begin null; end behavior;\n"
                "end specification;"
            )

    def test_statement_needs_terminator(self):
        with pytest.raises(ParseError):
            parse(
                "specification S is variable x : integer<8>;\n"
                "behavior A is leaf begin x := 1 end behavior;\n"
                "end specification;"
            )


_expr_leaves = st.one_of(
    st.integers(min_value=-999, max_value=999).map(Const),
    st.sampled_from(["a", "b", "c"]).map(VarRef),
    st.booleans().map(Const),
)


def _normalized(expr):
    """The printer's canonical form: a unary minus over a non-negative
    integer literal folds into a negative literal (and the parser folds
    the text the same way), so the print/parse identity holds modulo
    this normalisation."""
    if isinstance(expr, UnaryOp):
        operand = _normalized(expr.operand)
        if (
            expr.op == "-"
            and isinstance(operand, Const)
            and isinstance(operand.value, int)
            and not isinstance(operand.value, bool)
            and operand.value >= 0
        ):
            return Const(-operand.value)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _normalized(expr.left), _normalized(expr.right))
    if isinstance(expr, Index):
        return Index(_normalized(expr.base), _normalized(expr.index_expr))
    return expr


@st.composite
def _exprs(draw, depth=3):
    if depth == 0:
        return draw(_expr_leaves)
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind <= 1:
        return draw(_expr_leaves)
    if kind <= 3:
        op = draw(
            st.sampled_from(
                ["+", "-", "*", "/", "mod", "=", "/=", "<", "<=", ">", ">=",
                 "and", "or"]
            )
        )
        return BinOp(op, draw(_exprs(depth=depth - 1)), draw(_exprs(depth=depth - 1)))
    if kind == 4:
        op = draw(st.sampled_from(["-", "not", "abs"]))
        return UnaryOp(op, draw(_exprs(depth=depth - 1)))
    return Index(VarRef(draw(st.sampled_from(["arr", "mem"]))),
                 draw(_exprs(depth=depth - 1)))


class TestExpressionRoundTripProperty:
    @given(_exprs())
    @settings(max_examples=200)
    def test_print_parse_is_identity(self, expr):
        assert parse_expression(print_expr(expr)) == _normalized(expr)

    @given(_exprs())
    @settings(max_examples=200)
    def test_printed_text_is_a_fixpoint(self, expr):
        text = print_expr(expr)
        assert print_expr(parse_expression(text)) == text


class TestFuzzRegressions:
    """Shrunk reproductions of parser/printer bugs the differential
    fuzzer caught (see tests/corpus/ for the spec-level versions)."""

    def test_negative_literal_parses_as_const(self):
        assert parse_expression("-17") == Const(-17)

    def test_negated_negative_const_roundtrips(self):
        # used to print as '--12', which lexes as a comment
        expr = UnaryOp("-", Const(-12))
        text = print_expr(expr)
        assert text == "-(-12)"
        assert parse_expression(text) == expr

    def test_abs_of_negative_const_roundtrips(self):
        # used to print as 'abs -17', which re-parses as abs applied to
        # a unary op instead of a literal
        expr = UnaryOp("abs", Const(-17))
        text = print_expr(expr)
        assert text == "abs (-17)"
        assert parse_expression(text) == expr

    def test_negated_zero_prints_as_zero(self):
        assert print_expr(UnaryOp("-", Const(0))) == "0"
        assert parse_expression("-0") == Const(0)

    def test_negative_const_in_binop_roundtrips(self):
        expr = BinOp("-", Const(1), Const(-5))
        text = print_expr(expr)
        assert parse_expression(text) == expr

    def test_aggregate_literal_parses(self):
        # whole-array aggregates printed as '(22, 25, 77, 28)' used to
        # be rejected by the expression parser
        assert parse_expression("(22, 25, 77, 28)") == Const((22, 25, 77, 28))

    def test_aggregate_with_negative_elements(self):
        assert parse_expression("(-1, 0, -256)") == Const((-1, 0, -256))

    def test_aggregate_requires_literal_elements(self):
        with pytest.raises(ParseError):
            parse_expression("(1, x, 2)")

    def test_spec_with_aggregate_assignment_roundtrips(self):
        source = (
            "specification agg is\n"
            "  behavior b is leaf\n"
            "    variable buf : array<integer<8>, 3> := (0, 0, 0);\n"
            "  begin\n"
            "    buf := (22, -25, 77);\n"
            "  end behavior;\n"
            "end specification;\n"
        )
        parsed = parse(source)
        parsed.validate()
        text = print_specification(parsed)
        reparsed = parse(text)
        reparsed.validate()
        assert print_specification(reparsed) == text
