"""Determinism guarantees of the execution engine: serial and parallel
runs of the same campaign produce byte-identical reports, and a
cache-warm re-run answers everything from disk without changing a byte.
"""

import pytest

from repro.exec import (
    ExecutionEngine,
    Job,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    register,
)
from repro.experiments import run_figure10, run_robustness
from repro.experiments.fuzzing import run_fuzz
from repro.experiments.robustness import FaultScenario

SLICE_SCENARIOS = [
    FaultScenario(
        name="drop-done", kind="drop", target="b*_done",
        count=1, expect="recover",
    ),
    FaultScenario(
        name="kill-memory", kind="kill", target="?mem*",
        count=1, expect="detect",
    ),
]


def _slice_robustness(spec, seed=1996, engine=None):
    return run_robustness(
        spec=spec,
        scenarios=SLICE_SCENARIOS,
        designs=("Design1",),
        models=("Model4",),
        seed=seed,
        engine=engine,
    )


@register("test-echo")
def _echo_task(params):
    return {"value": params["value"]}


class TestGridOrder:
    """Results come back in grid order — by job identity, never by
    completion order."""

    def _jobs(self):
        return [Job("test-echo", {"value": i}) for i in range(8)]

    def test_serial_order(self):
        results = ExecutionEngine(executor=SerialExecutor()).run(self._jobs())
        assert [r.payload["value"] for r in results] == list(range(8))

    def test_process_order(self):
        engine = ExecutionEngine(
            executor=ProcessExecutor(workers=2, shard_size=1)
        )
        results = engine.run(self._jobs())
        assert [r.payload["value"] for r in results] == list(range(8))

    def test_sharded_process_order(self):
        engine = ExecutionEngine(
            executor=ProcessExecutor(workers=2, shard_size=3)
        )
        results = engine.run(self._jobs())
        assert [r.payload["value"] for r in results] == list(range(8))


class TestSerialVsProcessReports:
    """The tentpole guarantee: the executor is invisible in the
    report bytes."""

    @pytest.mark.parametrize("seed", [7, 1996, 2024])
    def test_robustness_slice_identical_across_seeds(self, medical_spec, seed):
        serial = _slice_robustness(medical_spec, seed=seed)
        process = _slice_robustness(
            medical_spec,
            seed=seed,
            engine=ExecutionEngine(executor=ProcessExecutor(workers=2)),
        )
        assert process.render() == serial.render()

    def test_figure9_identical(self, medical_spec, fig9):
        from repro.experiments import run_figure9

        process = run_figure9(
            spec=medical_spec,
            engine=ExecutionEngine(executor=ProcessExecutor(workers=2)),
        )
        assert process.render() == fig9.render()

    def test_fuzz_identical(self):
        serial = run_fuzz(seed=11, count=6, corpus=None)
        process = run_fuzz(
            seed=11, count=6, corpus=None,
            engine=ExecutionEngine(executor=ProcessExecutor(workers=2)),
        )
        assert process.render() == serial.render()


class TestWarmCacheReRun:
    def test_hit_only_and_byte_identical(self, medical_spec, tmp_path):
        cold_engine = ExecutionEngine(cache=ResultCache(str(tmp_path)))
        cold = _slice_robustness(medical_spec, engine=cold_engine)
        assert cold_engine.metrics.executed == cold_engine.metrics.jobs > 0

        warm_engine = ExecutionEngine(cache=ResultCache(str(tmp_path)))
        warm = _slice_robustness(medical_spec, engine=warm_engine)
        assert warm_engine.metrics.executed == 0
        assert warm_engine.metrics.cache_hits == warm_engine.metrics.jobs
        assert warm.render() == cold.render()

    def test_figure10_identical_through_shared_cache(self, medical_spec, tmp_path):
        """Figure 10 embeds refinement wall-clock, so its byte-identity
        guarantee goes through the cache: a warm re-run replays the
        measured times instead of re-measuring them."""
        cache_root = str(tmp_path / "fig10")
        cold = run_figure10(
            spec=medical_spec, check_equivalence=False,
            engine=ExecutionEngine(cache=ResultCache(cache_root)),
        )
        warm_engine = ExecutionEngine(
            executor=ProcessExecutor(workers=2),
            cache=ResultCache(cache_root),
        )
        warm = run_figure10(
            spec=medical_spec, check_equivalence=False, engine=warm_engine,
        )
        assert warm_engine.metrics.executed == 0
        assert warm.render() == cold.render()

    def test_refresh_recomputes_but_stays_identical(self, medical_spec, tmp_path):
        cold = _slice_robustness(
            medical_spec,
            engine=ExecutionEngine(cache=ResultCache(str(tmp_path))),
        )
        refresh_engine = ExecutionEngine(
            cache=ResultCache(str(tmp_path)), refresh=True
        )
        refreshed = _slice_robustness(medical_spec, engine=refresh_engine)
        assert refresh_engine.metrics.cache_hits == 0
        assert refresh_engine.metrics.executed == refresh_engine.metrics.jobs
        assert refreshed.render() == cold.render()
