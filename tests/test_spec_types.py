"""Unit tests for the IR data-type system."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    EnumType,
    IntType,
    BIT,
    BOOL,
    array_of,
    bits,
    int_type,
)


class TestBoolType:
    def test_bit_width(self):
        assert BOOL.bit_width == 1

    def test_default(self):
        assert BOOL.default_value() is False

    def test_contains(self):
        assert BOOL.contains(True)
        assert BOOL.contains(0)
        assert not BOOL.contains(2)
        assert not BOOL.contains("x")

    def test_coerce(self):
        assert BOOL.coerce(1) is True
        assert BOOL.coerce(False) is False

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            BOOL.coerce("yes")

    def test_equality_and_hash(self):
        assert BoolType() == BOOL
        assert hash(BoolType()) == hash(BOOL)


class TestIntType:
    def test_signed_range(self):
        t = int_type(8)
        assert t.min_value == -128
        assert t.max_value == 127

    def test_unsigned_range(self):
        t = int_type(8, signed=False)
        assert t.min_value == 0
        assert t.max_value == 255

    def test_bit_width(self):
        assert int_type(12).bit_width == 12

    def test_contains_excludes_bool(self):
        assert not int_type(8).contains(True)
        assert int_type(8).contains(5)

    def test_coerce_wraps_signed(self):
        t = int_type(8)
        assert t.coerce(130) == -126
        assert t.coerce(-129) == 127
        assert t.coerce(127) == 127

    def test_coerce_wraps_unsigned(self):
        t = int_type(8, signed=False)
        assert t.coerce(256) == 0
        assert t.coerce(-1) == 255

    def test_invalid_width(self):
        with pytest.raises(TypeMismatchError):
            IntType(width=0)

    def test_str(self):
        assert str(int_type(16)) == "integer<16>"
        assert str(int_type(4, signed=False)) == "natural<4>"

    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_coerce_always_in_range(self, value, width):
        t = int_type(width)
        coerced = t.coerce(value)
        assert t.min_value <= coerced <= t.max_value

    @given(st.integers(min_value=1, max_value=64), st.integers())
    def test_coerce_is_idempotent(self, width, value):
        t = int_type(width)
        once = t.coerce(value)
        assert t.coerce(once) == once

    @given(st.integers(min_value=1, max_value=32), st.integers())
    def test_coerce_preserves_congruence(self, width, value):
        t = int_type(width)
        assert (t.coerce(value) - value) % (1 << width) == 0


class TestBitVectorType:
    def test_bit_width(self):
        assert bits(9).bit_width == 9

    def test_coerce_wraps(self):
        assert bits(4).coerce(17) == 1
        assert bits(4).coerce(-1) == 15

    def test_bit_singleton(self):
        assert BIT.width == 1
        assert BIT.coerce(3) == 1

    def test_invalid(self):
        with pytest.raises(TypeMismatchError):
            BitVectorType(0)


class TestEnumType:
    def setup_method(self):
        self.enum = EnumType("state_t", ("idle", "busy", "done"))

    def test_bit_width_log2(self):
        assert self.enum.bit_width == 2
        assert EnumType("one", ("a",)).bit_width == 1
        assert EnumType("five", tuple("abcde")).bit_width == 3

    def test_default_is_first(self):
        assert self.enum.default_value() == "idle"

    def test_coerce_literal(self):
        assert self.enum.coerce("busy") == "busy"

    def test_coerce_ordinal(self):
        assert self.enum.coerce(2) == "done"

    def test_coerce_unknown(self):
        with pytest.raises(TypeMismatchError):
            self.enum.coerce("sleeping")

    def test_index_of(self):
        assert self.enum.index_of("done") == 2
        with pytest.raises(TypeMismatchError):
            self.enum.index_of("nope")

    def test_duplicate_literals_rejected(self):
        with pytest.raises(TypeMismatchError):
            EnumType("bad", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(TypeMismatchError):
            EnumType("bad", ())


class TestArrayType:
    def test_bit_width(self):
        assert array_of(int_type(8), 4).bit_width == 32

    def test_default(self):
        assert array_of(BOOL, 3).default_value() == (False, False, False)

    def test_coerce_list(self):
        t = array_of(int_type(8), 2)
        assert t.coerce([300, -1]) == (44, -1)

    def test_coerce_wrong_length(self):
        with pytest.raises(TypeMismatchError):
            array_of(BOOL, 2).coerce([True])

    def test_nested_rejected(self):
        with pytest.raises(TypeMismatchError):
            array_of(array_of(BOOL, 2), 2)

    def test_contains(self):
        t = array_of(int_type(8), 2)
        assert t.contains((1, 2))
        assert not t.contains((1, 999))
        assert not t.contains(5)
