"""Unit tests for the semantic validator."""

import pytest

from repro.errors import ScopeError, SpecError, TypeMismatchError
from repro.spec.builder import (
    assign,
    call,
    for_,
    if_,
    leaf,
    sassign,
    seq,
    spec,
    transition,
    wait_on,
    wait_until,
    while_,
)
from repro.spec.behavior import Transition
from repro.spec.expr import Const, Index, var
from repro.spec.stmt import body
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BIT, array_of, int_type
from repro.spec.variable import signal, variable


def valid_design():
    a = leaf("A", assign("x", var("x") + 1), sassign("done", 1))
    design = spec(
        "S",
        seq("Top", [a]),
        variables=[
            variable("x", int_type(), init=0),
            signal("done", BIT, init=0),
        ],
    )
    return design


class TestHappyPath:
    def test_valid_design_passes(self):
        valid_design().validate()

    def test_loop_variable_is_visible_in_body(self):
        a = leaf("A", for_("i", 0, 3, [assign("s", var("s") + var("i"))]))
        design = spec("S", a, variables=[variable("s", int_type())])
        design.validate()

    def test_wait_on_signal_ok(self):
        a = leaf("A", wait_on("clk"))
        design = spec("S", a, variables=[signal("clk", BIT)])
        design.validate()

    def test_call_with_out_lvalue_ok(self):
        sub = Subprogram(
            "get",
            params=[Param("result", int_type(), Direction.OUT)],
            stmt_body=[assign("result", 42)],
        )
        a = leaf("A", call("get", "dst"))
        design = spec(
            "S", a, variables=[variable("dst", int_type())], subprograms=[sub]
        )
        design.validate()


class TestScopeViolations:
    def test_unresolved_name_in_statement(self):
        a = leaf("A", assign("x", var("ghost")))
        design = spec("S", a, variables=[variable("x", int_type())])
        with pytest.raises(ScopeError):
            design.validate()

    def test_unresolved_name_in_transition_condition(self):
        a, b = leaf("A"), leaf("B")
        top = seq("T", [a, b], transitions=[transition("A", var("ghost") > 1, "B")])
        design = spec("S", top)
        with pytest.raises(ScopeError):
            design.validate()

    def test_local_not_visible_to_sibling(self):
        a = leaf("A")
        a.add_decl(variable("priv", int_type()))
        b = leaf("B", assign("x", var("priv")))
        design = spec("S", seq("T", [a, b]), variables=[variable("x", int_type())])
        with pytest.raises(ScopeError):
            design.validate()

    def test_wait_on_unknown_signal(self):
        a = leaf("A", wait_on("ghost"))
        design = spec("S", a)
        with pytest.raises(ScopeError):
            design.validate()


class TestKindViolations:
    def test_variable_assign_to_signal(self):
        a = leaf("A", assign("done", 1))
        design = spec("S", a, variables=[signal("done", BIT)])
        with pytest.raises(TypeMismatchError):
            design.validate()

    def test_signal_assign_to_variable(self):
        a = leaf("A", sassign("x", 1))
        design = spec("S", a, variables=[variable("x", int_type())])
        with pytest.raises(TypeMismatchError):
            design.validate()

    def test_wait_on_variable(self):
        a = leaf("A", wait_on("x"))
        design = spec("S", a, variables=[variable("x", int_type())])
        with pytest.raises(TypeMismatchError):
            design.validate()

    def test_assign_to_loop_variable(self):
        a = leaf("A", for_("i", 0, 3, [assign("i", 0)]))
        design = spec("S", a)
        with pytest.raises(SpecError):
            design.validate()


class TestStructureViolations:
    def test_duplicate_behavior_names_across_tree(self):
        inner = seq("Mid", [leaf("A")])
        top = seq("Top", [inner, leaf("A2")])
        design = spec("S", top)
        design.top.subs[1].name = "Mid"  # force a duplicate
        with pytest.raises(SpecError):
            design.validate()

    def test_transition_source_not_child(self):
        a, b = leaf("A"), leaf("B")
        top = seq("T", [a, b])
        top.transitions.append(Transition("Q", None, "B"))
        design = spec("S", top)
        with pytest.raises(SpecError):
            design.validate()

    def test_transition_target_not_child(self):
        a, b = leaf("A"), leaf("B")
        top = seq("T", [a, b])
        top.transitions.append(Transition("A", None, "Q"))
        design = spec("S", top)
        with pytest.raises(SpecError):
            design.validate()

    def test_duplicate_global_declarations(self):
        design = valid_design()
        design.variables.append(variable("x", int_type()))
        with pytest.raises(SpecError):
            design.validate()

    def test_duplicate_local_declarations(self):
        design = valid_design()
        a = design.find_behavior("A")
        a.decls.append(variable("d", int_type()))
        a.decls.append(variable("d", int_type()))
        with pytest.raises(SpecError):
            design.validate()

    def test_index_base_must_be_varref(self):
        bad = Index(Const(5) + Const(1), Const(0))
        a = leaf("A", assign("x", bad))
        design = spec(
            "S", a, variables=[variable("x", int_type())]
        )
        with pytest.raises(SpecError):
            design.validate()


class TestCallViolations:
    def make(self, stmt, subprograms=()):
        a = leaf("A", stmt)
        return spec(
            "S",
            a,
            variables=[variable("dst", int_type())],
            subprograms=subprograms,
        )

    def test_unknown_callee(self):
        design = self.make(call("nope"))
        with pytest.raises(SpecError):
            design.validate()

    def test_arity_mismatch(self):
        sub = Subprogram("p", params=[Param("a", int_type())])
        design = self.make(call("p"), subprograms=[sub])
        with pytest.raises(SpecError):
            design.validate()

    def test_out_param_needs_lvalue(self):
        sub = Subprogram(
            "get",
            params=[Param("result", int_type(), Direction.OUT)],
            stmt_body=[assign("result", 1)],
        )
        design = self.make(call("get", 5), subprograms=[sub])
        with pytest.raises(SpecError):
            design.validate()


class TestSubprogramBodies:
    def test_body_sees_params_and_globals(self):
        sub = Subprogram(
            "p",
            params=[Param("a", int_type())],
            stmt_body=[assign("g", var("a"))],
        )
        design = spec(
            "S", leaf("A", call("p", 1)), variables=[variable("g", int_type())],
            subprograms=[sub],
        )
        design.validate()

    def test_body_cannot_see_behavior_locals(self):
        sub = Subprogram("p", stmt_body=[assign("hidden", 1)])
        a = leaf("A", call("p"))
        a.add_decl(variable("hidden", int_type()))
        design = spec("S", a, subprograms=[sub])
        with pytest.raises(ScopeError):
            design.validate()

    def test_signal_assign_in_body_checked(self):
        sub = Subprogram("p", stmt_body=[sassign("g", 1)])
        design = spec(
            "S",
            leaf("A", call("p")),
            variables=[variable("g", int_type())],
            subprograms=[sub],
        )
        with pytest.raises(TypeMismatchError):
            design.validate()

    def test_nested_call_arity_checked(self):
        inner = Subprogram("inner", params=[Param("a", int_type())])
        outer = Subprogram("outer", stmt_body=[call("inner")])
        design = spec(
            "S", leaf("A", call("outer")), subprograms=[inner, outer]
        )
        with pytest.raises(SpecError):
            design.validate()
