"""Unit tests for the partition model."""

import pytest

from repro.apps.figures import (
    figure1_partition,
    figure1_specification,
    figure2_partition,
    figure2_specification,
)
from repro.errors import PartitionError
from repro.partition import Partition
from repro.spec.builder import assign, leaf, seq, spec, transition
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import variable


class TestFigurePartitions:
    def test_figure1_components_in_order(self):
        s = figure1_specification()
        p = figure1_partition(s)
        assert p.components() == ["PROC", "ASIC1"]
        assert p.p == 2

    def test_component_of_behavior(self):
        s = figure1_specification()
        p = figure1_partition(s)
        assert p.component_of_behavior("A") == "PROC"
        assert p.component_of_behavior("B") == "ASIC1"

    def test_component_of_variable(self):
        s = figure1_specification()
        p = figure1_partition(s)
        assert p.component_of_variable("x") == "ASIC1"

    def test_leaves_of(self):
        s = figure2_specification()
        p = figure2_partition(s)
        assert sorted(p.leaves_of("PROC")) == ["B1", "B2"]
        assert sorted(p.leaves_of("ASIC")) == ["B3", "B4"]

    def test_variables_of(self):
        s = figure2_specification()
        p = figure2_partition(s)
        assert set(p.variables_of("ASIC")) == {"v5", "v6", "v7"}

    def test_port_variables_are_not_partitionable(self):
        s = figure2_specification()
        mapping = dict(figure2_partition(s).assignment)
        mapping["stimulus"] = "PROC"  # INPUT port: rejected
        with pytest.raises(PartitionError):
            Partition.from_mapping(s, mapping)


class TestAncestorResolution:
    def make(self):
        inner = leaf("Leaf1", assign("x", 1))
        mid = seq("Mid", [inner])
        other = leaf("Leaf2", assign("x", 2))
        top = seq(
            "Top",
            [mid, other],
            transitions=[transition("Mid", None, "Leaf2")],
        )
        return spec("S", top, variables=[variable("x", int_type())])

    def test_leaf_resolves_through_assigned_ancestor(self):
        s = self.make()
        p = Partition.from_mapping(
            s, {"Mid": "HW", "Leaf2": "SW", "x": "SW"}
        )
        assert p.component_of_behavior("Leaf1") == "HW"

    def test_direct_assignment_beats_ancestor(self):
        s = self.make()
        p = Partition.from_mapping(
            s, {"Top": "SW", "Leaf1": "HW", "x": "SW"}
        )
        assert p.component_of_behavior("Leaf1") == "HW"
        assert p.component_of_behavior("Leaf2") == "SW"

    def test_whole_tree_assignment(self):
        s = self.make()
        p = Partition.from_mapping(s, {"Top": "SW", "x": "SW"})
        assert p.component_of_behavior("Leaf1") == "SW"
        assert p.p == 1


class TestValidation:
    def test_unknown_object_rejected(self):
        s = figure1_specification()
        with pytest.raises(PartitionError):
            Partition.from_mapping(s, {"Ghost": "PROC"})

    def test_uncovered_leaf_rejected(self):
        s = figure1_specification()
        with pytest.raises(PartitionError):
            Partition.from_mapping(
                s, {"A": "PROC", "B": "ASIC", "x": "ASIC"}
            )  # C unassigned

    def test_unassigned_variable_rejected(self):
        s = figure1_specification()
        with pytest.raises(PartitionError):
            Partition.from_mapping(s, {"Main": "PROC"})  # x unassigned

    def test_signals_need_no_assignment(self):
        from repro.spec.builder import sassign, wait_on
        from repro.spec.types import BIT
        from repro.spec.variable import signal

        b = leaf("A", sassign("s", 1))
        s = spec("S", b, variables=[signal("s", BIT)])
        Partition.from_mapping(s, {"A": "HW"})  # must not raise


class TestMoved:
    def test_moved_returns_new_partition(self):
        s = figure2_specification()
        p = figure2_partition(s)
        q = p.moved("v4", "ASIC")
        assert p.component_of_variable("v4") == "PROC"
        assert q.component_of_variable("v4") == "ASIC"

    def test_describe_mentions_components(self):
        s = figure2_specification()
        p = figure2_partition(s)
        text = p.describe()
        assert "PROC" in text and "ASIC" in text
