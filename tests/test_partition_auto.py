"""Tests for the automatic partitioners and their cost metrics."""

import pytest

from repro.apps.figures import figure2_partition, figure2_specification
from repro.apps.medical import medical_specification
from repro.errors import PartitionError
from repro.graph import AccessGraph
from repro.models import MODEL2
from repro.partition import (
    Partition,
    annealed_partition,
    balance_penalty,
    cut_weight,
    greedy_partition,
    kl_partition,
    movable_objects,
    partition_cost,
)
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import assign, leaf, seq, spec as build_spec
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import variable


@pytest.fixture(scope="module")
def fig2():
    spec = figure2_specification()
    spec.validate()
    graph = AccessGraph.from_specification(spec)
    return spec, graph


@pytest.fixture(scope="module")
def medical():
    spec = medical_specification()
    spec.validate()
    graph = AccessGraph.from_specification(spec)
    return spec, graph


class TestMetrics:
    def test_cut_weight_zero_for_single_component(self, fig2):
        spec, graph = fig2
        objects = movable_objects(spec, graph)
        single = Partition(spec, {obj: "ALL" for obj in objects})
        assert cut_weight(graph, single) == 0.0

    def test_cut_weight_positive_for_real_split(self, fig2):
        spec, graph = fig2
        assert cut_weight(graph, figure2_partition(spec)) > 0

    def test_balance_penalty_extremes(self, fig2):
        spec, graph = fig2
        objects = movable_objects(spec, graph)
        lopsided = Partition(spec, {obj: "A" for obj in objects})
        # force a second component so the fair share is total/2
        lopsided = lopsided.moved("v7", "B")
        assert balance_penalty(lopsided) > 0.3
        balanced = figure2_partition(spec)
        assert balance_penalty(balanced) < balance_penalty(lopsided)

    def test_partition_cost_composition(self, fig2):
        spec, graph = fig2
        partition = figure2_partition(spec)
        zero_balance = partition_cost(graph, partition, balance_weight=0.0)
        with_balance = partition_cost(graph, partition, balance_weight=1.0)
        assert with_balance >= zero_balance


class TestGreedy:
    def test_produces_valid_partition(self, fig2):
        spec, graph = fig2
        partition = greedy_partition(spec, graph=graph)
        assert partition.p >= 1
        for leaf in spec.leaf_behaviors():
            partition.component_of_behavior(leaf.name)  # must resolve

    def test_improves_on_round_robin_start(self, fig2):
        spec, graph = fig2
        objects = movable_objects(spec, graph)
        start = Partition(
            spec,
            {
                obj: ("SW", "HW")[index % 2]
                for index, obj in enumerate(objects)
            },
        )
        result = greedy_partition(spec, graph=graph)
        assert partition_cost(graph, result) <= partition_cost(graph, start)

    def test_requires_two_components(self, fig2):
        spec, graph = fig2
        with pytest.raises(PartitionError):
            greedy_partition(spec, components=("ONLY",), graph=graph)


class TestKL:
    def test_not_worse_than_greedy_seed(self, fig2):
        spec, graph = fig2
        greedy = greedy_partition(spec, graph=graph)
        kl = kl_partition(spec, graph=graph, seed_partition=greedy)
        assert partition_cost(graph, kl) <= partition_cost(graph, greedy) + 1e-9

    def test_standalone_run(self, medical):
        spec, graph = medical
        kl = kl_partition(spec, graph=graph, max_passes=3)
        assert set(kl.components()) <= {"SW", "HW"}


class TestAnnealing:
    def test_deterministic_for_fixed_seed(self, fig2):
        spec, graph = fig2
        a = annealed_partition(spec, graph=graph, seed=7, steps=400)
        b = annealed_partition(spec, graph=graph, seed=7, steps=400)
        assert a.assignment == b.assignment

    def test_different_seeds_may_differ(self, fig2):
        spec, graph = fig2
        a = annealed_partition(spec, graph=graph, seed=1, steps=400)
        b = annealed_partition(spec, graph=graph, seed=2, steps=400)
        # not asserting inequality (they may converge) but both valid
        assert partition_cost(graph, a) >= 0
        assert partition_cost(graph, b) >= 0

    def test_medical_annealing_beats_lopsided(self, medical):
        spec, graph = medical
        objects = movable_objects(spec, graph)
        lopsided = Partition(spec, {obj: "SW" for obj in objects})
        lopsided = lopsided.moved(objects[-1], "HW")
        annealed = annealed_partition(spec, graph=graph, steps=800)
        assert partition_cost(graph, annealed) < partition_cost(graph, lopsided)


class TestSeedAliasingRegression:
    """The partitioners must never mutate a caller's partition: the
    no-improvement path used to hand back the seed object itself with
    its ``name`` clobbered in place."""

    def test_kl_does_not_mutate_caller_seed(self, fig2):
        spec, graph = fig2
        # a KL fixpoint: re-running KL from it improves nothing, which
        # is exactly the path that used to return the seed renamed
        fixpoint = kl_partition(spec, graph=graph)
        seed = Partition(spec, fixpoint.assignment, name="caller-seed")
        result = kl_partition(spec, graph=graph, seed_partition=seed)
        assert seed.name == "caller-seed"
        assert result is not seed
        assert result.name == "kl"
        assert result.assignment == seed.assignment

    def test_annealed_does_not_mutate_caller_seed(self, fig2):
        spec, graph = fig2
        base = annealed_partition(spec, graph=graph, seed=3, steps=50)
        seed = Partition(spec, base.assignment, name="caller-seed")
        # zero steps: the walk never leaves the seed, so the returned
        # best IS the seed unless the partitioner clones it
        result = annealed_partition(
            spec, graph=graph, seed=3, steps=0, seed_partition=seed
        )
        assert seed.name == "caller-seed"
        assert result is not seed
        assert result.name == "annealed"
        assert result.assignment == seed.assignment

    def test_greedy_returns_named_clone(self, fig2):
        spec, graph = fig2
        assert greedy_partition(spec, graph=graph).name == "greedy"


class TestNamespaceCollision:
    """A variable named identically to a behavior used to collapse to
    one assignment key, silently co-assigning both objects."""

    def _collision_spec(self):
        design = build_spec(
            "T",
            seq(
                "Top",
                [
                    leaf("A", assign("A", var("A") + 1)),
                    leaf("B", assign("A", var("A") + 2)),
                ],
            ),
            variables=[variable("A", int_type(), init=0)],
        )
        # precondition of the bug: the validator accepts this spec
        design.validate()
        return design

    def test_movable_objects_rejects_shadowed_name(self):
        design = self._collision_spec()
        with pytest.raises(PartitionError) as err:
            movable_objects(design)
        assert err.value.objects == ("A",)
        assert "A" in str(err.value)

    @pytest.mark.parametrize(
        "algorithm", [greedy_partition, kl_partition, annealed_partition]
    )
    def test_partitioners_refuse_shadowed_names(self, algorithm):
        design = self._collision_spec()
        with pytest.raises(PartitionError) as err:
            algorithm(design)
        assert err.value.objects == ("A",)


class _NoLeafSpec:
    """Degenerate specification view: no leaves, no behaviors.  The
    builder cannot produce one (composites require children), but the
    partitioners only consume these two iterators, so this pins the
    guard for any caller that hands over an emptied move space."""

    def leaf_behaviors(self):
        return iter(())

    def behaviors(self):
        return iter(())


class _NoVariableGraph:
    variable_names = frozenset()


class TestEmptyMoveSpace:
    """An empty move space used to crash annealing with a bare
    ``IndexError`` from ``rng.choice`` and let greedy/KL return an
    invalid empty-assignment partition; all three now refuse with a
    structured error."""

    @pytest.mark.parametrize(
        "algorithm", [greedy_partition, kl_partition, annealed_partition]
    )
    def test_raises_structured_partition_error(self, algorithm):
        with pytest.raises(PartitionError) as err:
            algorithm(_NoLeafSpec(), graph=_NoVariableGraph())
        assert "no movable objects" in str(err.value)


class TestAutoPartitionFeedsRefinement:
    def test_greedy_partition_refines_and_is_equivalent(self, fig2):
        """The full flow the paper describes: partition automatically,
        refine, verify by co-simulation."""
        spec, graph = fig2
        partition = greedy_partition(spec, graph=graph)
        if partition.p < 2:
            pytest.skip("greedy collapsed to one component")
        refined = Refiner(spec, partition, MODEL2).run()
        check_equivalence(refined, inputs={"stimulus": 4}).raise_if_mismatched()
