"""Refinement provenance: stamps, completeness, and ``repro explain``.

The completeness property (ISSUE 3): every node of a refined medical
specification either exists in the source specification or carries a
provenance record naming the refinement procedure and rule that
produced it — across all three designs and all four implementation
models — and every *line* of the printed refined source resolves.
"""

import pytest

from repro.apps.medical import all_designs, medical_specification
from repro.models import ALL_MODELS
from repro.obs.explain import SpecExplainer
from repro.obs.provenance import (
    Provenance,
    copy_provenance,
    provenance_of,
    provenance_report,
    stamp,
)
from repro.refine import Refiner
from repro.spec.variable import variable
from repro.spec.types import int_type


@pytest.fixture(scope="module")
def medical():
    spec = medical_specification()
    spec.validate()
    return spec


def refine(spec, design, model):
    return Refiner(spec, all_designs(spec)[design], model).run()


class TestStamping:
    def test_stamp_and_read_back(self):
        node = variable("x", int_type(), init=0)
        returned = stamp(node, "data", "fetch-tmp", source="x", detail="why")
        assert returned is node
        record = provenance_of(node)
        assert record == Provenance("data", "fetch-tmp", "x", "why")
        assert "data/fetch-tmp" in record.describe()
        assert "(from x)" in record.describe()

    def test_unstamped_reads_none(self):
        assert provenance_of(variable("y", int_type(), init=0)) is None

    def test_copy_provenance(self):
        src = stamp(variable("a", int_type(), init=0), "memory", "server")
        dst = variable("b", int_type(), init=0)
        copy_provenance(src, dst)
        assert provenance_of(dst) == provenance_of(src)

    def test_variable_copy_carries_provenance(self):
        src = stamp(variable("a", int_type(), init=0), "arbiter", "req")
        assert provenance_of(src.copy()) == provenance_of(src)


class TestCompleteness:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("design", ["Design1", "Design2", "Design3"])
    def test_every_node_sourced_or_stamped(self, medical, design, model):
        refined = refine(medical, design, model)
        report = provenance_report(refined.spec, medical)
        assert report.complete, report.describe()
        assert not report.missing

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("design", ["Design1", "Design2", "Design3"])
    def test_every_refined_line_resolves(self, medical, design, model):
        refined = refine(medical, design, model)
        explainer = SpecExplainer(refined.spec, medical)
        unresolved = explainer.unresolved()
        assert unresolved == [], "\n".join(
            f"{e.line_no}: {e.text}" for e in unresolved
        )

    def test_report_groups_by_procedure(self, medical):
        refined = refine(medical, "Design1", ALL_MODELS[1])
        report = provenance_report(refined.spec, medical)
        groups = report.by_procedure()
        # the source survives, and the major refinement passes all left marks
        for procedure in ("source", "control", "data", "memory", "arbiter",
                          "emitter"):
            assert groups.get(procedure), f"no nodes from {procedure}"
        assert "source" in report.describe()


class TestExplain:
    def test_known_lines_resolve_to_their_procedures(self, medical):
        refined = refine(medical, "Design1", ALL_MODELS[1])
        explainer = SpecExplainer(refined.spec, medical)
        by_procedure = {}
        for explanation in explainer.explain_all():
            by_procedure.setdefault(
                explanation.provenance.procedure, []
            ).append(explanation)
        # arbiter behaviors, emitter signals and data fetches all appear
        assert by_procedure["arbiter"]
        assert by_procedure["emitter"]
        assert by_procedure["data"]
        # and the untouched source lines are credited to the source
        assert by_procedure["source"]

    def test_explain_single_line(self, medical):
        refined = refine(medical, "Design1", ALL_MODELS[0])
        explainer = SpecExplainer(refined.spec, medical)
        text = explainer.explain(1).describe()
        assert "line 1:" in text
        assert "origin:" in text
        assert "UNRESOLVED" not in text

    def test_summary_counts_every_line(self, medical):
        refined = refine(medical, "Design1", ALL_MODELS[0])
        explainer = SpecExplainer(refined.spec, medical)
        summary = explainer.summary()
        assert f"{len(explainer.line_map)} lines" in summary
        assert "emitter" in summary
        assert "UNRESOLVED" not in summary
