"""Scaling behaviour: a specification an order of magnitude larger than
the medical system must still refine, validate and co-simulate in
reasonable time (guards against accidental quadratic blow-ups in the
refiner or simulator)."""

import time

import pytest

from repro.graph import AccessGraph
from repro.models import MODEL2, MODEL4
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import (
    assign,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable

STAGES = 40


@pytest.fixture(scope="module")
def big_spec():
    """A 40-stage pipeline over 40 variables (≈120 statements)."""
    leaves = []
    variables = [
        variable("inp", int_type(), init=3, role=Role.INPUT),
        variable("final", int_type(), init=0, role=Role.OUTPUT),
    ]
    previous = "inp"
    for index in range(STAGES):
        name = f"v{index}"
        variables.append(variable(name, int_type(), init=0))
        stmts = [
            assign(name, var(previous) + index),
            assign(name, var(name) * 2 - index),
        ]
        if index % 5 == 0:
            stmts.append(assign(name, var(name) + var(previous)))
        leaves.append(leaf(f"Stage{index}", *stmts))
        previous = name
    leaves.append(leaf("Emit", assign("final", var(previous))))
    names = [b.name for b in leaves]
    transitions = [
        transition(source, None, target)
        for source, target in zip(names, names[1:])
    ]
    transitions.append(on_complete(names[-1]))
    design = spec(
        "BigPipeline",
        seq("Pipe", leaves, transitions=transitions),
        variables=variables,
    )
    design.validate()
    return design


@pytest.fixture(scope="module")
def big_partition(big_spec):
    assignment = {}
    for index in range(STAGES):
        side = "CPU" if index % 2 == 0 else "HW"
        assignment[f"Stage{index}"] = side
        assignment[f"v{index}"] = side
    assignment["Emit"] = "CPU"
    return Partition.from_mapping(big_spec, assignment, name="interleaved")


class TestScaling:
    def test_graph_derivation_is_fast(self, big_spec):
        started = time.perf_counter()
        graph = AccessGraph.from_specification(big_spec)
        assert graph.channel_count() > 100
        assert time.perf_counter() - started < 1.0

    @pytest.mark.parametrize("model", [MODEL2, MODEL4], ids=lambda m: m.name)
    def test_refine_and_verify_in_bounded_time(
        self, big_spec, big_partition, model
    ):
        started = time.perf_counter()
        refined = Refiner(big_spec, big_partition, model).run()
        refine_seconds = time.perf_counter() - started
        assert refine_seconds < 10.0

        # every odd stage moved: ~20 B_CTRL/B_NEW pairs
        assert len(refined.control.moved) >= STAGES // 2 - 1

        started = time.perf_counter()
        report = check_equivalence(refined, inputs={"inp": 3})
        assert report.equivalent, report.describe()
        assert time.perf_counter() - started < 30.0

    def test_refined_size_scales_linearly_ish(self, big_spec, big_partition):
        refined = Refiner(big_spec, big_partition, MODEL2).run()
        sizes = refined.line_counts()
        # growth stays within an order of magnitude of the input
        assert sizes["ratio"] < 15
