"""Shared session-scoped fixtures for the test suite.

The medical system (the paper's evaluation workload) and the campaign
results computed over its 3-designs x 4-models grid are expensive to
build and read-only in every test that touches them, so they are
constructed once per session here instead of once per module.

Markers (registered in pytest.ini):

* ``slow`` — takes more than a few seconds; run on demand;
* ``campaign`` — full campaign sweeps (tier 2).  The default ``addopts``
  deselect them, so plain ``pytest`` stays fast; CI's scheduled tier-2
  job runs ``pytest -m campaign``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the per-workload golden reports under tests/golden/ "
             "instead of comparing against them",
    )


def _workload_ids():
    from repro.apps.workloads import default_registry

    return default_registry().names()


@pytest.fixture(scope="session", params=_workload_ids())
def workload(request):
    """Every registry workload in turn — tests taking this fixture run
    once per entry (medical, answering, pcm_pwm, pipeline, mesh,
    controller)."""
    from repro.apps.workloads import default_registry

    return default_registry().get(request.param)


@pytest.fixture(scope="session")
def workload_fig9(workload):
    """The (cheap, unmeasured) Figure 9 sweep of one workload — shared
    between the shape tests and the golden-report comparison."""
    from repro.experiments import run_figure9

    return run_figure9(workload=workload.id, count_transfers=False)


@pytest.fixture(scope="session")
def workload_fig10(workload):
    """The Figure 10 sweep of one workload (no equivalence pass)."""
    from repro.experiments import run_figure10

    return run_figure10(workload=workload.id, check_equivalence=False)


@pytest.fixture(scope="session")
def medical_spec():
    """The validated medical bladder-volume specification."""
    from repro.apps.medical import medical_specification

    spec = medical_specification()
    spec.validate()
    return spec


@pytest.fixture(scope="session")
def medical_graph(medical_spec):
    """The medical system's variable-access graph."""
    from repro.graph import AccessGraph

    return AccessGraph.from_specification(medical_spec)


@pytest.fixture(scope="session")
def medical_designs(medical_spec):
    """The paper's three design partitions, keyed ``Design1..3``."""
    from repro.apps.medical import all_designs

    return all_designs(medical_spec)


@pytest.fixture(scope="session")
def fig9(medical_spec):
    """The full Figure 9 sweep (3 designs x 4 models, measured)."""
    from repro.experiments import run_figure9

    return run_figure9(spec=medical_spec)


@pytest.fixture(scope="session")
def fig10(medical_spec):
    """The full Figure 10 sweep (refinement sizes/times, no
    equivalence co-simulation)."""
    from repro.experiments import run_figure10

    return run_figure10(spec=medical_spec, check_equivalence=False)
