"""The workload registry: entry integrity, negative paths, the
``repro workloads`` / ``validate-hdl`` CLIs, and the per-workload
golden figure reports (refresh with ``pytest --update-golden``)."""

import re
from pathlib import Path

import pytest

from repro.apps.workloads import (
    Workload,
    WorkloadError,
    WorkloadRegistry,
    default_registry,
    resolve_workload,
)
from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestRegistry:
    def test_six_entries_in_registration_order(self):
        registry = default_registry()
        assert registry.names() == [
            "medical", "answering", "pcm_pwm",
            "pipeline", "mesh", "controller",
        ]

    def test_resolve_default_is_medical(self):
        assert resolve_workload(None).id == "medical"

    def test_resolve_passes_workload_through(self):
        workload = default_registry().get("pcm_pwm")
        assert resolve_workload(workload) is workload

    def test_contains_and_len(self):
        registry = default_registry()
        assert "pcm_pwm" in registry
        assert "nope" not in registry
        assert len(registry) == 6

    def test_every_entry_validates(self):
        for workload, summary, error in default_registry().validate_all():
            assert error is None, f"{workload.id}: {error}"
            assert "behaviors" in summary


class TestWorkloadEntry:
    def test_spec_is_fresh_and_valid(self, workload):
        first = workload.spec()
        second = workload.spec()
        assert first is not second
        assert first.name == second.name

    def test_default_design_in_catalog(self, workload):
        spec = workload.spec()
        designs = workload.designs(spec)
        assert workload.default_design in designs
        for partition in designs.values():
            assert set(partition.components()) <= {"PROC", "ASIC"}

    def test_input_vectors_are_deterministic(self, workload):
        assert workload.input_vectors(3) == workload.input_vectors(3)
        vectors = workload.input_vectors(1, count=4)
        assert len(vectors) == 4

    def test_validate_summary(self, workload):
        summary = workload.validate()
        assert workload.id not in summary  # summary is id-free prose
        assert "completed" in summary


class TestNegativePaths:
    def _dummy(self, workload_id="dup"):
        medical = default_registry().get("medical")
        return Workload(
            id=workload_id,
            title=medical.title,
            category="test",
            description="clone for registry tests",
            spec_factory=medical.spec_factory,
            designs_factory=medical.designs_factory,
            default_inputs=medical.default_inputs,
            default_design=medical.default_design,
        )

    def test_duplicate_id_rejected(self):
        registry = WorkloadRegistry()
        registry.add(self._dummy())
        with pytest.raises(WorkloadError, match="duplicate workload"):
            registry.add(self._dummy())

    def test_unknown_id_lists_choices(self):
        with pytest.raises(WorkloadError, match="choose from"):
            default_registry().get("zeppelin")

    def test_non_terminating_spec_flagged(self):
        from repro.spec.builder import (
            assign, leaf, seq, spec, transition, wait_for,
        )
        from repro.spec.expr import var
        from repro.spec.types import int_type
        from repro.spec.variable import Role, variable

        def forever():
            # the wait makes every lap cost scheduler steps, so the
            # kernel's max_steps budget (not wall-clock) catches it
            looped = spec(
                "Forever",
                seq(
                    "top",
                    [leaf("spin",
                          assign(var("x"), var("x") + 1), wait_for(1))],
                    transitions=[transition("spin", None, "spin")],
                ),
                variables=[
                    variable("x", int_type(16), init=0, role=Role.OUTPUT),
                ],
            )
            looped.validate()
            return looped

        bad = Workload(
            id="forever",
            title="never completes",
            category="test",
            description="terminates never",
            spec_factory=forever,
            designs_factory=lambda spec_: {},
            default_inputs={},
            default_design="none",
        )
        with pytest.raises(WorkloadError, match="does not terminate"):
            bad.validate(max_steps=500)


class TestCampaignCliRejectsUnknownWorkload:
    """Each of the five campaign CLIs must exit 2 with the registry's
    choose-from message, before any campaign work starts."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["figure9", "--workload", "zeppelin"],
            ["figure10", "--workload", "zeppelin"],
            ["robustness", "--workload", "zeppelin", "-o", ""],
            ["sweep", "--workload", "zeppelin", "-o", ""],
            ["explore", "--workload", "zeppelin", "-o", ""],
        ],
        ids=["figure9", "figure10", "robustness", "sweep", "explore"],
    )
    def test_exit_2_with_message(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'zeppelin'" in err
        assert "choose from" in err


class TestWorkloadsCli:
    def test_list_table(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in default_registry().names():
            assert name in out

    def test_describe(self, capsys):
        assert main(["workloads", "--describe", "pcm_pwm"]) == 0
        out = capsys.readouterr().out
        assert "PCM-to-PWM" in out
        assert "Design1 (default)" in out
        assert "invariants" in out

    def test_describe_unknown_exits_2(self, capsys):
        assert main(["workloads", "--describe", "zeppelin"]) == 2
        assert "choose from" in capsys.readouterr().err

    def test_validate(self, capsys):
        assert main(["workloads", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "6/6 workloads valid" in out


class TestValidateHdl:
    def test_cli_smallest_workload(self, capsys):
        # pipeline: 1 design, sequential spec — the cheapest full pass
        assert main(["validate-hdl", "--workload", "pipeline"]) == 0
        captured = capsys.readouterr()
        assert "External validation: workload pipeline" in captured.out
        assert "mismatch" not in captured.out

    def test_concurrent_spec_skips_with_notice(self):
        from repro.export.validate import validate_workload

        report = validate_workload("mesh")
        assert report.ok
        by_stage = {(c.backend, c.stage): c for c in report.checks
                    if c.design == "-"}
        assert by_stage[("c", "co-simulate")].status == "skipped"
        assert "concurrent" in by_stage[("c", "co-simulate")].detail

    def test_mismatch_is_reported(self, monkeypatch):
        # sabotage the kernel reference so the (correct) C program
        # disagrees: the harness must say mismatch, not ok
        import repro.export.validate as validate_mod

        real = validate_mod._reference_outputs

        def skewed(spec, inputs, max_steps):
            outputs = real(spec, inputs, max_steps)
            return {name: int(value) + 1 for name, value in outputs.items()}

        monkeypatch.setattr(validate_mod, "_reference_outputs", skewed)
        report = validate_mod.validate_workload("pipeline", models=())
        c_check = next(
            c for c in report.checks
            if c.backend == "c" and c.stage == "co-simulate"
        )
        if c_check.status == "skipped":
            pytest.skip(c_check.detail)
        assert c_check.status == "mismatch"
        assert "kernel=" in c_check.detail
        assert not report.ok


def _normalize_fig10(text: str) -> str:
    """Blank the wall-clock milliseconds Figure 10 embeds and collapse
    the column padding they stretch — sizes and ratios are
    deterministic, timings (and hence cell widths) are not."""
    text = re.sub(r"/\d+ms", "/--ms", text)
    text = re.sub(r"-{3,}", "--", text)   # rule widths follow cell widths
    return re.sub(r" +", " ", text)


class TestGoldenReports:
    def _check(self, request, name: str, rendered: str) -> None:
        path = GOLDEN_DIR / name
        if request.config.getoption("--update-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        assert path.exists(), (
            f"missing golden {path}; run pytest --update-golden"
        )
        assert rendered == path.read_text(), (
            f"{name} drifted from the committed golden; inspect the diff "
            "and refresh with pytest --update-golden if intentional"
        )

    def test_figure9_golden(self, request, workload, workload_fig9):
        self._check(
            request,
            f"{workload.id}_figure9.txt",
            workload_fig9.render() + "\n",
        )

    def test_figure10_golden(self, request, workload, workload_fig10):
        self._check(
            request,
            f"{workload.id}_figure10.txt",
            _normalize_fig10(workload_fig10.render() + "\n"),
        )
