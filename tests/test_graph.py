"""Unit tests for access-graph derivation and analysis."""

import pytest

from repro.apps.figures import (
    figure1_partition,
    figure1_specification,
    figure2_partition,
    figure2_specification,
)
from repro.errors import GraphError
from repro.graph import (
    AccessGraph,
    ChannelKind,
    classify_variables,
    channel_matrix,
    cut_channels,
)
from repro.spec.builder import (
    assign,
    for_,
    leaf,
    sassign,
    seq,
    spec,
    transition,
    while_,
)
from repro.spec.expr import var
from repro.spec.types import BIT, int_type
from repro.spec.variable import signal, variable


class TestFigure1Graph:
    def setup_method(self):
        self.spec = figure1_specification()
        self.graph = AccessGraph.from_specification(self.spec)

    def test_nodes(self):
        assert {"A", "B", "C", "Main"} <= self.graph.behavior_names
        # ports (seed: INPUT, result: OUTPUT) are not partitionable and
        # therefore not variable nodes; only internal x is
        assert {"x"} == self.graph.variable_names

    def test_transition_condition_attributed_to_composite(self):
        # A:(x>1,B) and A:(x<1,C): the arcs' conditions are evaluated
        # by Main's sequencer, so Main is the accessing behavior (that
        # is also where refinement's condition fetches execute)
        channels = self.graph.channels_of_behavior("Main")
        kinds = {(c.variable, c.kind) for c in channels}
        assert ("x", ChannelKind.READ) in kinds

    def test_b_reads_and_writes_x(self):
        kinds = {
            (c.variable, c.kind) for c in self.graph.channels_of_behavior("B")
        }
        assert ("x", ChannelKind.READ) in kinds
        assert ("x", ChannelKind.WRITE) in kinds

    def test_accessors_of_x(self):
        assert self.graph.accessors_of("x") == {"A", "B", "C", "Main"}

    def test_unknown_queries_raise(self):
        with pytest.raises(GraphError):
            self.graph.channels_of_behavior("nope")
        with pytest.raises(GraphError):
            self.graph.channels_of_variable("nope")

    def test_control_channels(self):
        arcs = self.graph.control_channels()
        pairs = {(c.source, c.target) for c in arcs}
        assert ("A", "B") in pairs
        assert ("A", "C") in pairs

    def test_networkx_export(self):
        g = self.graph.to_networkx()
        assert g.nodes["x"]["kind"] == "variable"
        assert g.nodes["B"]["kind"] == "behavior"
        assert g.has_edge("B", "x")  # write edge
        assert g.has_edge("x", "B")  # read edge


class TestFigure2Classification:
    def setup_method(self):
        self.spec = figure2_specification()
        self.graph = AccessGraph.from_specification(self.spec)
        self.partition = figure2_partition(self.spec)

    def test_paper_local_global_split(self):
        cls = classify_variables(self.graph, self.partition)
        assert {"v1", "v2", "v3"} <= set(cls.local["PROC"])
        assert {"v6"} <= set(cls.local["ASIC"])
        assert set(cls.global_vars) == {"v4", "v5", "v7"}

    def test_home_components(self):
        cls = classify_variables(self.graph, self.partition)
        assert cls.home["v4"] == "PROC"
        assert cls.home["v5"] == "ASIC"

    def test_is_global_is_local(self):
        cls = classify_variables(self.graph, self.partition)
        assert cls.is_global("v4")
        assert cls.is_local("v1")
        assert not cls.is_local("v4")

    def test_cut_channels_cross_partitions_only(self):
        for channel in cut_channels(self.graph, self.partition):
            behavior_comp = self.partition.component_of_behavior(channel.behavior)
            variable_comp = self.partition.component_of_variable(channel.variable)
            assert behavior_comp != variable_comp

    def test_cut_contains_b1_reads_v5(self):
        cut = cut_channels(self.graph, self.partition)
        assert any(
            c.behavior == "B1" and c.variable == "v5" and c.kind is ChannelKind.READ
            for c in cut
        )

    def test_channel_matrix_totals(self):
        matrix = channel_matrix(self.graph, self.partition)
        total = sum(matrix.values())
        assert total == sum(c.weight for c in self.graph.data_channels())
        assert matrix[("PROC", "ASIC")] > 0
        assert matrix[("ASIC", "PROC")] > 0

    def test_ratio_label(self):
        cls = classify_variables(self.graph, self.partition)
        assert cls.ratio_label() == "Local > Global"


class TestLoopWeights:
    def test_for_loop_multiplies_weight(self):
        b = leaf("L", for_("i", 0, 9, [assign("acc", var("acc") + var("d"))]))
        design = spec(
            "S",
            b,
            variables=[variable("acc", int_type()), variable("d", int_type())],
        )
        graph = AccessGraph.from_specification(design)
        read_d = next(
            c
            for c in graph.channels_of_behavior("L")
            if c.variable == "d" and c.kind is ChannelKind.READ
        )
        assert read_d.weight == 10.0
        assert read_d.sites == 1

    def test_while_expect_annotation(self):
        b = leaf(
            "L",
            while_(var("x") < 5, [assign("x", var("x") + 1)], expected=5),
        )
        design = spec("S", b, variables=[variable("x", int_type())])
        graph = AccessGraph.from_specification(design)
        write_x = next(
            c
            for c in graph.channels_of_behavior("L")
            if c.kind is ChannelKind.WRITE
        )
        assert write_x.weight == 5.0

    def test_nested_loops_multiply(self):
        b = leaf(
            "L",
            for_("i", 0, 1, [for_("j", 0, 2, [assign("a", var("a") + 1)])]),
        )
        design = spec("S", b, variables=[variable("a", int_type())])
        graph = AccessGraph.from_specification(design)
        write_a = next(
            c for c in graph.channels_of_behavior("L") if c.kind is ChannelKind.WRITE
        )
        assert write_a.weight == 6.0  # 2 * 3

    def test_loop_bound_reads_counted_once(self):
        b = leaf("L", for_("i", 0, var("n"), [assign("a", 1)]))
        design = spec(
            "S", b, variables=[variable("a", int_type()), variable("n", int_type())]
        )
        graph = AccessGraph.from_specification(design)
        read_n = next(
            c for c in graph.channels_of_behavior("L") if c.variable == "n"
        )
        assert read_n.weight == 1.0


class TestSignalsAndLocalsExcluded:
    def test_signals_are_not_nodes(self):
        b = leaf("A", sassign("s", 1))
        design = spec("S", b, variables=[signal("s", BIT)])
        graph = AccessGraph.from_specification(design)
        assert graph.variable_names == set()
        assert graph.data_channels() == []

    def test_behavior_locals_are_not_nodes(self):
        b = leaf("A", assign("t", 1))
        b.add_decl(variable("t", int_type()))
        design = spec("S", b)
        graph = AccessGraph.from_specification(design)
        assert graph.variable_names == set()

    def test_array_index_read_counts(self):
        b = leaf("A", assign(var("buf").index(var("i")), var("i")))
        from repro.spec.types import array_of

        design = spec(
            "S",
            b,
            variables=[
                variable("buf", array_of(int_type(8), 4)),
                variable("i", int_type()),
            ],
        )
        graph = AccessGraph.from_specification(design)
        kinds = {(c.variable, c.kind) for c in graph.data_channels()}
        assert ("buf", ChannelKind.WRITE) in kinds
        assert ("i", ChannelKind.READ) in kinds
