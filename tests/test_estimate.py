"""Tests for timing, profiling, channel/bus rates and the cost model."""

import pytest

from repro.apps.figures import figure2_partition, figure2_specification
from repro.arch import Allocation, asic, processor
from repro.errors import EstimationError
from repro.estimate import (
    CostWeights,
    TimingModel,
    bus_transfer_rates,
    channel_rates,
    cost_function,
    design_cost,
    profile_specification,
    static_profile,
)
from repro.graph import AccessGraph, ChannelKind
from repro.models import ALL_MODELS, MODEL1, MODEL2, MODEL3, MODEL4
from repro.spec.builder import assign, leaf
from repro.spec.stmt import Assign, Null
from repro.spec.expr import var


@pytest.fixture(scope="module")
def setting():
    spec = figure2_specification()
    spec.validate()
    partition = figure2_partition(spec)
    allocation = Allocation(
        [processor("PROC"), asic("ASIC")], name="fig2"
    )
    graph = AccessGraph.from_specification(spec)
    return spec, partition, allocation, graph


class TestTimingModel:
    def test_software_slower_than_hardware(self):
        timing = TimingModel()
        sw = processor("P", clock_hz=10e6)
        hw = asic("A", clock_hz=10e6)
        stmt = assign("x", var("x"))
        assert timing.seconds(sw, stmt) > timing.seconds(hw, stmt)

    def test_clock_scales_cost(self):
        timing = TimingModel()
        slow = asic("A1", clock_hz=10e6)
        fast = asic("A2", clock_hz=20e6)
        stmt = assign("x", 1)
        assert timing.seconds(slow, stmt) == pytest.approx(
            2 * timing.seconds(fast, stmt)
        )

    def test_null_is_cheapest_hw(self):
        timing = TimingModel()
        hw = asic("A")
        assert timing.seconds(hw, Null()) == 0.0

    def test_cost_function_uses_partition(self, setting):
        spec, partition, allocation, _ = setting
        fn = cost_function(partition, allocation)
        stmt = assign("v1", 1)
        # B1 runs on the processor (slow), B3 on the ASIC (fast)
        assert fn("B1", stmt) > fn("B3", stmt)

    def test_unknown_behavior_priced_on_first_component(self, setting):
        # refinement-inserted servers and subprogram bodies are not in
        # the partition; they fall back to the first component's rate
        spec, partition, allocation, _ = setting
        fn = cost_function(partition, allocation)
        stmt = assign("v1", 1)
        first = partition.components()[0]
        known_on_first = next(
            b for b in partition.assignment
            if partition.assignment[b] == first
        )
        assert fn("Gmem_server", stmt) == fn(known_on_first, stmt)

    def test_missing_allocation_raises_estimation_error(self, setting):
        # a partitioned behavior whose component has no allocation is a
        # configuration error, not a silent fallback
        spec, partition, _, _ = setting
        partial = Allocation([processor("PROC")], name="half")
        fn = cost_function(partition, partial)
        stmt = assign("v1", 1)
        with pytest.raises(EstimationError) as error:
            fn("B3", stmt)  # B3 lives on the unallocated ASIC
        assert "B3" in str(error.value)
        assert "ASIC" in str(error.value)

    def test_unknown_behavior_with_missing_first_allocation_raises(
        self, setting
    ):
        spec, partition, _, _ = setting
        first = partition.components()[0]
        others = [c for c in partition.components() if c != first]
        partial = Allocation(
            [asic(name) for name in others], name="no-first"
        )
        fn = cost_function(partition, partial)
        with pytest.raises(EstimationError):
            fn("not_a_partitioned_behavior", assign("v1", 1))


class TestDynamicProfile:
    def test_profile_counts_accesses(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        assert profile.kind == "dynamic"
        # B1 reads v5 once (v2 := v2 + v5)
        assert profile.accesses("B1", "v5", ChannelKind.READ) == 1
        # B1 writes v2 twice
        assert profile.accesses("B1", "v2", ChannelKind.WRITE) == 2

    def test_lifetimes_positive_for_executed(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        for behavior in ("B1", "B2", "B3", "B4"):
            assert profile.lifetime(behavior) > 0

    def test_software_behaviors_live_longer(self, setting):
        """B1 (processor) runs the same statement count as B3 (ASIC) but
        the processor's cycles-per-statement dominate."""
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        assert profile.lifetime("B1") > profile.lifetime("B3")

    def test_activations(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        assert profile.activations["B1"] == 1


class TestStaticProfile:
    def test_counts_match_graph_weights(self, setting):
        spec, partition, allocation, graph = setting
        profile = static_profile(spec, partition, allocation, graph=graph)
        assert profile.kind == "static"
        assert profile.accesses("B1", "v5", ChannelKind.READ) == 1.0

    def test_lifetimes_positive(self, setting):
        spec, partition, allocation, graph = setting
        profile = static_profile(spec, partition, allocation, graph=graph)
        assert profile.lifetime("B2") > 0

    def test_static_close_to_dynamic_for_loop_free_spec(self, setting):
        spec, partition, allocation, graph = setting
        dynamic = profile_specification(spec, partition, allocation, graph=graph)
        static = static_profile(spec, partition, allocation, graph=graph)
        for behavior in ("B1", "B2", "B3", "B4"):
            # loop-free bodies: identical statement counts -> equal times
            assert static.lifetime(behavior) == pytest.approx(
                dynamic.lifetime(behavior), rel=0.01
            )


class TestChannelRates:
    def test_rates_positive_and_finite(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        rates = channel_rates(graph, profile)
        assert rates
        for rate in rates:
            assert rate.bits_per_second > 0

    def test_rate_formula(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        rates = channel_rates(graph, profile)
        sample = next(r for r in rates if r.behavior == "B1" and r.variable == "v5")
        expected = sample.accesses * 16 / profile.lifetime("B1")
        assert sample.bits_per_second == pytest.approx(expected)


class TestBusRates:
    @pytest.fixture()
    def reports(self, setting):
        spec, partition, allocation, graph = setting
        profile = profile_specification(spec, partition, allocation, graph=graph)
        rates = channel_rates(graph, profile)
        return {
            model.name: bus_transfer_rates(
                model.build_plan(spec, partition, graph=graph), graph, profile,
                rates=rates,
            )
            for model in ALL_MODELS
        }

    def test_model1_single_bus_carries_everything(self, reports):
        model1 = reports["Model1"]
        assert set(model1.rates) == {"b1"}
        total_all = sum(c.bits_per_second for c in model1.channels)
        assert model1.rate_of("b1") == pytest.approx(total_all)

    def test_model1_is_sum_of_model2_buses(self, reports):
        """Internal consistency of Figure 9: Model1's single bus carries
        what Model2 splits over local+global buses."""
        assert reports["Model1"].total_rate == pytest.approx(
            reports["Model2"].total_rate
        )

    def test_model2_global_bus_equals_model3_dedicated_sum(self, reports):
        model2 = reports["Model2"]
        model3 = reports["Model3"]
        global_bus = model2.rate_of("b2")
        dedicated = sum(model3.rate_of(f"b{i}") for i in (2, 3, 4, 5))
        assert global_bus == pytest.approx(dedicated)

    def test_model3_max_rate_is_lowest(self, reports):
        """Spreading globals over dedicated buses lowers the hot spot."""
        assert reports["Model3"].max_rate <= reports["Model2"].max_rate
        assert reports["Model3"].max_rate <= reports["Model1"].max_rate

    def test_model4_interface_buses_equal(self, reports):
        """The paper's b2=b3=b4: all carry exactly the cross traffic."""
        model4 = reports["Model4"]
        assert model4.rate_of("b2") == pytest.approx(model4.rate_of("b3"))
        assert model4.rate_of("b3") == pytest.approx(model4.rate_of("b4"))

    def test_model4_local_includes_resident_globals(self, reports):
        """Model4's local bus carries local + resident-global accesses,
        so it exceeds Model2's purely-local bus."""
        assert reports["Model4"].rate_of("b1") > reports["Model2"].rate_of("b1")

    def test_model1_dominates_every_other_max(self, reports):
        m1 = reports["Model1"].max_rate
        for name in ("Model2", "Model3", "Model4"):
            assert m1 >= reports[name].max_rate

    def test_as_row_unit_is_mbits(self, reports):
        row = reports["Model1"].as_row()
        assert row["b1"] == pytest.approx(reports["Model1"].rate_of("b1") / 1e6)


class TestCostModel:
    def test_model3_ports_cost_more_than_model2(self, setting):
        spec, partition, allocation, graph = setting
        plan2 = MODEL2.build_plan(spec, partition, graph=graph)
        plan3 = MODEL3.build_plan(spec, partition, graph=graph)
        cost2 = design_cost(plan2)
        cost3 = design_cost(plan3)
        assert cost3.port_count > cost2.port_count
        assert cost3.bus_count > cost2.bus_count

    def test_model4_has_interfaces(self, setting):
        spec, partition, allocation, graph = setting
        plan = MODEL4.build_plan(spec, partition, graph=graph)
        report = design_cost(plan)
        assert report.interface_count == 2

    def test_model1_fewest_buses(self, setting):
        spec, partition, _, graph = setting
        counts = {
            m.name: design_cost(m.build_plan(spec, partition, graph=graph)).bus_count
            for m in ALL_MODELS
        }
        assert counts["Model1"] == 1
        assert counts["Model1"] == min(counts.values())

    def test_memory_bits_constant_across_models(self, setting):
        spec, partition, _, graph = setting
        bits = {
            design_cost(m.build_plan(spec, partition, graph=graph)).memory_bits
            for m in ALL_MODELS
        }
        assert len(bits) == 1  # same variables stored everywhere

    def test_weights_scale_total(self, setting):
        spec, partition, _, graph = setting
        plan = MODEL2.build_plan(spec, partition, graph=graph)
        cheap = design_cost(plan, weights=CostWeights(bus=1.0))
        pricey = design_cost(plan, weights=CostWeights(bus=1000.0))
        assert pricey.total > cheap.total

    def test_as_dict_keys(self, setting):
        spec, partition, _, graph = setting
        plan = MODEL1.build_plan(spec, partition, graph=graph)
        d = design_cost(plan).as_dict()
        assert {"buses", "memories", "ports", "total_cost"} <= set(d)
