"""Unit tests for the expression AST and its construction DSL."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecError
from repro.spec.expr import (
    BinOp,
    Const,
    Index,
    TRUE,
    FALSE,
    UnaryOp,
    VarRef,
    const,
    free_variables,
    substitute,
    var,
)


class TestConstruction:
    def test_var(self):
        assert var("x") == VarRef("x")

    def test_const(self):
        assert const(5) == Const(5)

    def test_invalid_const(self):
        with pytest.raises(SpecError):
            Const(3.14)

    def test_invalid_var_name(self):
        with pytest.raises(SpecError):
            VarRef("")

    def test_unknown_binop(self):
        with pytest.raises(SpecError):
            BinOp("xor", TRUE, FALSE)

    def test_unknown_unary(self):
        with pytest.raises(SpecError):
            UnaryOp("~", TRUE)


class TestOperatorDsl:
    def test_add_lifts_int(self):
        expr = var("x") + 5
        assert expr == BinOp("+", VarRef("x"), Const(5))

    def test_radd(self):
        assert 5 + var("x") == BinOp("+", Const(5), VarRef("x"))

    def test_comparison(self):
        assert (var("x") > 1) == BinOp(">", VarRef("x"), Const(1))

    def test_chained_arithmetic(self):
        expr = (var("a") + var("b")) * 2
        assert expr == BinOp("*", BinOp("+", VarRef("a"), VarRef("b")), Const(2))

    def test_eq_method(self):
        assert var("x").eq(0) == BinOp("=", VarRef("x"), Const(0))

    def test_ne_method(self):
        assert var("x").ne(1) == BinOp("/=", VarRef("x"), Const(1))

    def test_logic(self):
        expr = (var("a") > 0).and_(var("b") < 1).or_(var("c").eq(2))
        assert expr.op == "or"
        assert expr.left.op == "and"

    def test_not(self):
        assert var("p").not_() == UnaryOp("not", VarRef("p"))

    def test_neg(self):
        assert -var("x") == UnaryOp("-", VarRef("x"))

    def test_mod(self):
        assert var("x") % 4 == BinOp("mod", VarRef("x"), Const(4))

    def test_div(self):
        assert var("x") / 4 == BinOp("/", VarRef("x"), Const(4))
        assert var("x") // 4 == BinOp("/", VarRef("x"), Const(4))

    def test_index(self):
        expr = var("a").index(var("i") + 1)
        assert isinstance(expr, Index)
        assert expr.base == VarRef("a")


class TestWalk:
    def test_walk_order(self):
        expr = (var("x") + 1) > var("y")
        nodes = list(expr.walk())
        assert nodes[0] is expr
        assert VarRef("x") in nodes
        assert VarRef("y") in nodes
        assert Const(1) in nodes

    def test_free_variables(self):
        expr = (var("x") + var("y")) * var("x")
        assert free_variables(expr) == {"x", "y"}

    def test_free_variables_in_index(self):
        expr = var("a").index(var("i"))
        assert free_variables(expr) == {"a", "i"}


class TestSubstitute:
    def test_simple(self):
        expr = var("x") + 1
        result = substitute(expr, {"x": var("tmp")})
        assert result == BinOp("+", VarRef("tmp"), Const(1))

    def test_untouched(self):
        expr = var("y") + 1
        assert substitute(expr, {"x": var("tmp")}) == expr

    def test_nested(self):
        expr = (var("x") > 1).and_((-var("x")).eq(var("z")))
        result = substitute(expr, {"x": var("t")})
        assert free_variables(result) == {"t", "z"}

    def test_index_both_sides(self):
        expr = var("a").index(var("i"))
        result = substitute(expr, {"a": var("b"), "i": var("j")})
        assert result == Index(VarRef("b"), VarRef("j"))

    def test_replacement_can_be_complex(self):
        expr = var("x") + 1
        result = substitute(expr, {"x": var("u") * 2})
        assert result == BinOp("+", BinOp("*", VarRef("u"), Const(2)), Const(1))


_names = st.sampled_from(["a", "b", "c", "x", "y"])


@st.composite
def expressions(draw, depth=3):
    if depth == 0:
        if draw(st.booleans()):
            return VarRef(draw(_names))
        return Const(draw(st.integers(min_value=-100, max_value=100)))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return VarRef(draw(_names))
    if choice == 1:
        return Const(draw(st.integers(min_value=-100, max_value=100)))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "<", "=", "and", "or"]))
        return BinOp(
            op,
            draw(expressions(depth=depth - 1)),
            draw(expressions(depth=depth - 1)),
        )
    op = draw(st.sampled_from(["-", "not", "abs"]))
    return UnaryOp(op, draw(expressions(depth=depth - 1)))


class TestProperties:
    @given(expressions())
    def test_identity_substitution(self, expr):
        assert substitute(expr, {}) == expr

    @given(expressions())
    def test_substitute_removes_name(self, expr):
        result = substitute(expr, {"x": var("fresh_name")})
        assert "x" not in free_variables(result)

    @given(expressions())
    def test_walk_includes_all_free_variables(self, expr):
        walked_names = {n.name for n in expr.walk() if isinstance(n, VarRef)}
        assert walked_names == free_variables(expr)

    @given(expressions())
    def test_expressions_are_hashable(self, expr):
        assert hash(expr) == hash(expr)
        assert expr in {expr}
