"""Tests for data-related refinement (paper §4.2, Figures 5-6)."""

import pytest

from repro.apps.figures import (
    figure5_specification,
    figure6_specification,
)
from repro.errors import RefinementError
from repro.models import MODEL1, MODEL2
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence
from repro.spec.behavior import CompositeBehavior, LeafBehavior
from repro.spec.builder import (
    assign,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
    wait_until,
    while_,
    for_,
)
from repro.spec.expr import var
from repro.spec.stmt import CallStmt
from repro.spec.types import array_of, int_type
from repro.spec.variable import Role, variable
from repro.spec.visitor import walk_statements


def refine_figure5(model=MODEL1):
    design_spec = figure5_specification()
    design_spec.validate()
    partition = Partition.from_mapping(
        design_spec, {"Driver": "PROC", "B": "PROC", "x": "ASIC"}
    )
    return Refiner(design_spec, partition, model).run()


def calls_in(behavior):
    return [
        s for s in walk_statements(behavior.stmt_body) if isinstance(s, CallStmt)
    ]


class TestFigure5LeafRefinement:
    def test_access_becomes_receive_then_send(self):
        """x := x + 5 becomes MST_receive(x_addr, tmp); MST_send(x_addr,
        tmp + 5) — Figure 5c."""
        design = refine_figure5()
        b = design.spec.find_behavior("B")
        calls = calls_in(b)
        assert len(calls) >= 2
        assert "MST_receive" in calls[0].callee
        assert "MST_send" in calls[1].callee

    def test_tmp_variable_declared(self):
        design = refine_figure5()
        b = design.spec.find_behavior("B")
        assert any(d.name.startswith("tmp_x") for d in b.decls)

    def test_address_argument_matches_plan(self):
        design = refine_figure5()
        base = design.plan.address_of("x").base
        b = design.spec.find_behavior("B")
        first = calls_in(b)[0]
        from repro.spec.expr import Const

        assert first.args[0] == Const(base)

    def test_x_no_longer_global(self):
        design = refine_figure5()
        assert design.spec.global_variable("x") is None

    def test_ports_stay_global(self):
        design = refine_figure5()
        assert design.spec.global_variable("seed") is not None
        assert design.spec.global_variable("out") is not None

    def test_refined_validates_and_is_equivalent(self):
        design = refine_figure5()
        design.spec.validate()
        for seed in (7, -3, 0):
            check_equivalence(design, inputs={"seed": seed}).raise_if_mismatched()


class TestFigure6TransitionRefinement:
    def make(self, model=MODEL1):
        design_spec = figure6_specification()
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec,
            {"B1": "PROC", "B2": "PROC", "B3": "PROC", "x": "ASIC"},
        )
        return Refiner(design_spec, partition, model).run()

    def test_tmp_on_composite(self):
        design = self.make()
        composite = design.spec.find_behavior("B")
        assert any(d.name.startswith("tmp_x") for d in composite.decls)

    def test_fetch_appended_to_source_leaves(self):
        """Figure 6b: the protocols are inserted at the end of B1 and
        B2, where the comparisons happen."""
        design = self.make()
        for source in ("B1", "B2"):
            behavior = design.spec.find_behavior(source)
            last_calls = [
                s for s in behavior.stmt_body if isinstance(s, CallStmt)
            ]
            assert last_calls, f"{source} has no trailing fetch"
            assert "MST_receive" in last_calls[-1].callee

    def test_conditions_rewritten_to_tmp(self):
        design = self.make()
        composite = design.spec.find_behavior("B")
        conds = [t.condition for t in composite.transitions if t.condition]
        from repro.spec.expr import free_variables

        for cond in conds:
            names = free_variables(cond)
            assert "x" not in names
            assert any(n.startswith("tmp_x") for n in names)

    def test_equivalent_through_all_paths(self):
        design = self.make()
        check_equivalence(design).raise_if_mismatched()


class TestLoopConditionRefresh:
    def make_loop_design(self):
        body = leaf(
            "L",
            assign("count", 0),
            while_(
                var("x") > 0,
                [assign("x", var("x") - 1), assign("count", var("count") + 1)],
            ),
            assign("out", var("count")),
        )
        design_spec = spec(
            "LoopSpec",
            body,
            variables=[
                variable("x", int_type(), init=4),
                variable("count", int_type(), init=0),
                variable("out", int_type(), init=0, role=Role.OUTPUT),
            ],
        )
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec, {"L": "PROC", "x": "ASIC", "count": "PROC"}
        )
        return Refiner(design_spec, partition, MODEL2).run()

    def test_loop_body_ends_with_refresh_fetch(self):
        design = self.make_loop_design()
        behavior = design.spec.find_behavior("L")
        whiles = [
            s for s in walk_statements(behavior.stmt_body)
            if type(s).__name__ == "While" and s.cond != var("x")
        ]
        # find the refined while (condition on tmp)
        target = [w for w in whiles if w.loop_body]
        assert target
        last = target[0].loop_body[-1]
        assert isinstance(last, CallStmt)
        assert "MST_receive" in last.callee

    def test_loop_semantics_preserved(self):
        design = self.make_loop_design()
        report = check_equivalence(design)
        report.raise_if_mismatched()
        assert report.refined_run.value_of("out") == 4


class TestArrayRefinement:
    def make_array_design(self):
        body = leaf(
            "L",
            for_("i", 0, 3, [assign(var("buf").index(var("i")), var("i") * 5)]),
            assign("out", var("buf").index(2)),
        )
        design_spec = spec(
            "ArraySpec",
            body,
            variables=[
                variable("buf", array_of(int_type(8), 4)),
                variable("out", int_type(), init=0, role=Role.OUTPUT),
            ],
        )
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec, {"L": "PROC", "buf": "ASIC"}
        )
        return Refiner(design_spec, partition, MODEL1).run()

    def test_element_addressing(self):
        design = self.make_array_design()
        base = design.plan.address_of("buf").base
        assert design.plan.address_of("buf").size == 4
        behavior = design.spec.find_behavior("L")
        sends = [c for c in calls_in(behavior) if "MST_send" in c.callee]
        from repro.spec.expr import BinOp, Const

        assert sends
        addr = sends[0].args[0]
        assert isinstance(addr, BinOp) and addr.op == "+"
        assert addr.left == Const(base)

    def test_array_semantics_preserved(self):
        design = self.make_array_design()
        report = check_equivalence(design)
        report.raise_if_mismatched()
        assert report.refined_run.value_of("out") == 10


class TestUnsupportedPatterns:
    def test_wait_until_on_placed_variable_rejected(self):
        from repro.spec.types import BIT
        from repro.spec.variable import signal

        body = leaf("L", wait_until(var("x") > 0), assign("x", 0))
        design_spec = spec(
            "BadWait",
            body,
            variables=[variable("x", int_type(), init=1)],
        )
        design_spec.validate()
        partition = Partition.from_mapping(
            design_spec, {"L": "PROC", "x": "ASIC"}
        )
        with pytest.raises(RefinementError, match="wait"):
            Refiner(design_spec, partition, MODEL1).run()


class TestUntouchedLeavesStayUntouched:
    def test_leaf_without_placed_access_not_rewritten(self):
        design = refine_figure5()
        # Driver writes x -> rewritten; a hypothetical pure-port leaf
        # would not be.  Check data result lists only touching leaves.
        assert set(design.data.rewritten_leaves) <= {"Driver", "B"}
        assert "Driver" in design.data.rewritten_leaves
