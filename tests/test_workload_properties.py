"""Property tests over the workload registry (Hypothesis).

Two invariants every registry entry advertises, exercised with
generated stimuli instead of the single default vector:

* the default design refines to an *equivalent* implementation under
  every one of the four implementation models;
* the batched multi-lane kernel is indistinguishable, lane for lane,
  from serial single-lane simulation of the same vectors.

Refined designs are cached per (workload, model) at module level —
refinement is deterministic and read-only under co-simulation, so one
build serves every Hypothesis example.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz import check_batch_parity
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence

_SPECS = {}
_REFINED = {}

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _spec(workload):
    if workload.id not in _SPECS:
        spec = workload.spec()
        spec.validate()
        _SPECS[workload.id] = spec
    return _SPECS[workload.id]


def _refined(workload, model):
    key = (workload.id, model.name)
    if key not in _REFINED:
        spec = _spec(workload)
        partition = workload.designs(spec)[workload.default_design]
        _REFINED[key] = Refiner(spec, partition, model).run()
    return _REFINED[key]


class TestRegistryProperties:
    @settings(max_examples=8, **_COMMON)
    @given(model=st.sampled_from(ALL_MODELS), seed=st.integers(0, 2**16))
    def test_equivalent_under_every_model(self, workload, model, seed):
        """check_equivalence holds for the default design across all
        four models and generated input vectors."""
        design = _refined(workload, model)
        inputs = workload.input_vectors(seed, count=1)[0]
        report = check_equivalence(design, inputs=inputs)
        assert report.equivalent, (
            f"{workload.id}/{model.name} seed={seed}: {report.describe()}"
        )

    @settings(max_examples=4, **_COMMON)
    @given(seed=st.integers(0, 2**16))
    def test_batch_kernel_matches_single_lane(self, workload, seed):
        """One multi-lane batch of generated vectors produces exactly
        the single-lane outcomes, lane for lane."""
        vectors = workload.input_vectors(seed, count=4)
        failures = check_batch_parity(_spec(workload), vectors)
        assert failures == [], "\n".join(f.detail for f in failures)
