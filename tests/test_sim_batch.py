"""Batched multi-lane engine: per-lane parity with the single-lane
kernel, early exit, error replay, determinism, metrics and wiring.

The contract under test is absolute: every lane of a
:class:`repro.sim.batch.BatchSimulator` batch must be bit-identical —
outputs, traces, step counts, simulated time, completion, metrics
counters, VCD change streams, and error messages — to a single-lane
:class:`repro.sim.interpreter.Simulator` run of the same stimulus.
"""

import pytest

from repro.errors import DeadlockError, SimulationError, SimulationLimitExceeded
from repro.models.impl_models import ALL_MODELS
from repro.refine.refiner import Refiner
from repro.sim import KernelLimits, SimMetrics, Simulator
from repro.sim.batch import BatchMetrics, BatchSimulator
from repro.spec.builder import (
    assign,
    conc,
    leaf,
    sassign,
    seq,
    spec,
    wait_until,
    while_,
)
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, signal, variable


def _single_runs(design, stimuli, **kwargs):
    sim = Simulator(design)
    return [sim.run(inputs=dict(s), **kwargs) for s in stimuli]


def _assert_result_parity(batch, singles):
    assert len(batch) == len(singles)
    for lane, single in zip(batch, singles):
        assert lane.ok, lane.error_text
        result = lane.result
        assert result.completed == single.completed
        assert result.steps == single.steps
        assert result.time == single.time
        assert result.output_values() == single.output_values()
        assert [
            (e.step, e.variable, e.value) for e in result.trace
        ] == [(e.step, e.variable, e.value) for e in single.trace]


def _loop_spec():
    """Root loops ``n`` times through a signal wait: runtime, step count
    and trace length all scale with the ``n`` input, so lanes finish at
    different times (early exit) and trip limits independently."""
    return spec(
        "Loopy",
        leaf(
            "Main",
            while_(
                var("i") < var("n"),
                [
                    sassign("s", var("i") + 1),
                    wait_until(var("s").eq(var("i") + 1)),
                    assign("i", var("i") + 1),
                    assign("out", var("out") + var("i")),
                ],
            ),
        ),
        variables=[
            variable("n", int_type(), role=Role.INPUT, init=1),
            variable("i", int_type(), init=0),
            variable("out", int_type(), role=Role.OUTPUT, init=0),
            signal("s", int_type(), init=0),
        ],
    )


def _gate_spec():
    """Completes only when the ``go`` input is 1: the producer writes
    ``go`` onto a signal the waiter blocks on, so ``go=0`` lanes go
    quiescent with the root unfinished (a per-lane deadlock under
    ``require_completion``)."""
    return spec(
        "Gated",
        conc(
            "Top",
            [
                leaf("Producer", sassign("gate", var("go"))),
                leaf("Waiter", wait_until(var("gate").eq(1))),
            ],
        ),
        variables=[
            variable("go", int_type(), role=Role.INPUT, init=0),
            signal("gate", int_type(), init=0),
        ],
    )


class TestLaneParity:
    def test_builder_spec_lanes_match_single_runs(self):
        design = _loop_spec()
        design.validate()
        stimuli = [{"n": n} for n in (0, 1, 5, 2, 9, 3)]
        batch = BatchSimulator(design).run_batch(stimuli)
        _assert_result_parity(batch, _single_runs(design, stimuli))

    def test_medical_refined_lanes_match_single_runs(
        self, medical_spec, medical_designs
    ):
        from repro.apps.medical import MEDICAL_INPUTS
        from repro.exec.campaigns import sweep_inputs

        partition = medical_designs["Design2"]
        design = Refiner(medical_spec, partition, ALL_MODELS[0]).run()
        stimuli = [
            sweep_inputs(design.spec, seed, dict(MEDICAL_INPUTS))
            for seed in range(4)
        ]
        batch = BatchSimulator(design.spec).run_batch(stimuli)
        _assert_result_parity(batch, _single_runs(design.spec, stimuli))

    def test_walker_mode_batch_matches_walker_single(self):
        design = _loop_spec()
        design.validate()
        stimuli = [{"n": n} for n in (2, 4, 1)]
        batch = BatchSimulator(design, compile_cache=False).run_batch(stimuli)
        singles = [
            Simulator(design, compile_cache=False).run(inputs=dict(s))
            for s in stimuli
        ]
        _assert_result_parity(batch, singles)

    def test_determinism_across_quantum_and_order(self):
        design = _loop_spec()
        design.validate()
        stimuli = [{"n": n} for n in (7, 0, 3, 5)]

        def snapshot(batch):
            return [
                (
                    lane.result.steps,
                    lane.result.output_values(),
                    [(e.step, e.variable, e.value) for e in lane.result.trace],
                )
                for lane in batch
            ]

        reference = snapshot(BatchSimulator(design).run_batch(stimuli))
        for quantum in (1, 3, 64):
            assert (
                snapshot(BatchSimulator(design).run_batch(stimuli, quantum=quantum))
                == reference
            )
        # lane order is per-lane state only: permuting stimuli permutes
        # outcomes with them
        rev = BatchSimulator(design).run_batch(list(reversed(stimuli)))
        assert snapshot(rev) == list(reversed(reference))

    def test_one_simulator_many_batches(self):
        design = _loop_spec()
        design.validate()
        batcher = BatchSimulator(design)
        first = batcher.run_batch([{"n": 3}, {"n": 1}])
        second = batcher.run_batch([{"n": 3}, {"n": 1}])
        _assert_result_parity(second, [lane.result for lane in first])


class TestErrorLanes:
    def test_limit_trips_per_lane_with_exact_message(self):
        design = _loop_spec()
        design.validate()
        limits = KernelLimits(max_steps=20)
        stimuli = [{"n": 2}, {"n": 500}, {"n": 3}]
        batch = BatchSimulator(design).run_batch(stimuli, limits=limits)
        sim = Simulator(design)

        healthy = [0, 2]
        for index in healthy:
            single = sim.run(inputs=dict(stimuli[index]), limits=limits)
            assert batch[index].ok
            assert batch[index].result.output_values() == single.output_values()

        assert not batch[1].ok
        assert batch[1].replayed
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            sim.run(inputs=dict(stimuli[1]), limits=limits)
        assert batch[1].error_text == (
            f"{type(excinfo.value).__name__}: {excinfo.value}"
        )
        assert batch.metrics.lanes_faulted == 1
        assert batch.metrics.lanes_completed == 2
        assert batch.metrics.lanes_replayed == 1

    def test_deadlocked_lane_matches_single_lane_deadlock(self):
        design = _gate_spec()
        design.validate()
        stimuli = [{"go": 1}, {"go": 0}, {"go": 1}]
        batch = BatchSimulator(design).run_batch(
            stimuli, require_completion=True
        )
        assert batch[0].ok and batch[2].ok
        assert not batch[1].ok
        assert isinstance(batch[1].error, DeadlockError)
        with pytest.raises(DeadlockError) as excinfo:
            Simulator(design).run(inputs={"go": 0}, require_completion=True)
        assert batch[1].error_text == (
            f"{type(excinfo.value).__name__}: {excinfo.value}"
        )

    def test_setup_error_is_exact_and_lane_local(self):
        design = _loop_spec()
        design.validate()
        batch = BatchSimulator(design).run_batch(
            [{"n": 2}, {"bogus": 1}, {"out": 3}]
        )
        assert batch[0].ok
        assert batch[1].error_text == "SimulationError: unknown inputs: ['bogus']"
        assert batch[2].error_text == (
            "SimulationError: 'out' is not an input variable"
        )

    def test_raise_first_error(self):
        design = _loop_spec()
        design.validate()
        batch = BatchSimulator(design).run_batch([{"n": 1}, {"bogus": 1}])
        with pytest.raises(SimulationError):
            batch.raise_first_error()


class TestMetricsAndObservers:
    def test_lane_metrics_match_single_lane_counters(self):
        design = _loop_spec()
        design.validate()
        stimuli = [{"n": n} for n in (4, 0, 6)]
        batch = BatchSimulator(design).run_batch(stimuli, collect_metrics=True)
        for lane, stimulus in zip(batch, stimuli):
            single = SimMetrics()
            Simulator(design).run(inputs=dict(stimulus), metrics=single)
            for name, _ in SimMetrics.FIELDS:
                if name == "wall_seconds":
                    continue  # machine-dependent by definition
                assert getattr(lane.metrics, name) == getattr(single, name), name

    def test_batch_metrics_totals_aggregate_lanes(self):
        design = _loop_spec()
        design.validate()
        batch = BatchSimulator(design).run_batch(
            [{"n": 2}, {"n": 5}], collect_metrics=True
        )
        metrics = batch.metrics
        assert isinstance(metrics, BatchMetrics)
        assert metrics.lanes == 2
        assert metrics.lanes_completed == 2
        assert metrics.lane_switches >= 2
        assert metrics.totals.activations == sum(
            lane.metrics.activations for lane in batch
        )
        assert metrics.totals.max_delta_streak == max(
            lane.metrics.max_delta_streak for lane in batch
        )
        described = metrics.describe()
        assert "lanes" in described and "lane switches" in described
        assert metrics.as_dict()["totals"]["activations"] > 0

    def test_vcd_observer_streams_match_single_lane(self):
        from repro.obs.vcd import VCDWriter

        design = _loop_spec()
        design.validate()
        stimuli = [{"n": 3}, {"n": 1}]
        writers = [VCDWriter(), VCDWriter()]
        BatchSimulator(design).run_batch(stimuli, observers=writers)
        for stimulus, writer in zip(stimuli, writers):
            solo = VCDWriter()
            Simulator(design).run(inputs=dict(stimulus), observer=solo)
            assert writer.dump() == solo.dump()

    def test_observer_count_mismatch_rejected(self):
        design = _loop_spec()
        design.validate()
        with pytest.raises(ValueError):
            BatchSimulator(design).run_batch([{"n": 1}], observers=[])

    def test_tracer_gets_lane_and_batch_spans(self):
        from repro.obs.trace import SpanTracer

        design = _loop_spec()
        design.validate()
        tracer = SpanTracer()
        BatchSimulator(design).run_batch(
            [{"n": 1}, {"n": 2}], tracer=tracer
        )
        names = [span.name for span in tracer.iter_spans()]
        assert "lane0" in names and "lane1" in names and "batch" in names


class TestEquivalenceBatch:
    def test_reports_match_serial_equivalence(
        self, medical_spec, medical_designs
    ):
        from repro.apps.medical import MEDICAL_INPUTS
        from repro.exec.campaigns import sweep_inputs
        from repro.sim.equivalence import (
            check_equivalence,
            check_equivalence_batch,
        )

        design = Refiner(
            medical_spec, medical_designs["Design1"], ALL_MODELS[1]
        ).run()
        vectors = [
            sweep_inputs(design.spec, seed, dict(MEDICAL_INPUTS))
            for seed in range(3)
        ]
        reports = check_equivalence_batch(design, vectors)
        for vector, report in zip(vectors, reports):
            serial = check_equivalence(design, vector)
            assert report.equivalent == serial.equivalent
            assert [str(m) for m in report.mismatches] == [
                str(m) for m in serial.mismatches
            ]
            assert report.refined_run.steps == serial.refined_run.steps
            assert report.describe() == serial.describe()


class TestExecWiring:
    def test_batch_cell_payload_matches_sweep_cells(self, medical_spec):
        from repro.apps.medical import MEDICAL_INPUTS, all_designs
        from repro.exec import canonical_partition, canonical_spec_text
        from repro.exec.campaigns import get_task

        catalog = all_designs(medical_spec)
        base = {
            "spec": canonical_spec_text(medical_spec),
            "partition": canonical_partition(catalog["Design1"]),
            "design": "Design1",
            "model": "Model3",
            "protocol": "handshake",
            "inputs": dict(MEDICAL_INPUTS),
            "limits": None,
        }
        seeds = [0, 1, 2]
        batched = get_task("batch-cell")(dict(base, seeds=seeds))
        assert [cell["seed"] for cell in batched["cells"]] == seeds
        for seed, cell in zip(seeds, batched["cells"]):
            serial = get_task("sweep-cell")(dict(base, seed=seed))
            assert cell["kernel"] == "batched"
            assert serial["kernel"] == "compiled"
            for key in ("refined_lines", "equivalent", "inputs", "steps"):
                assert cell[key] == serial[key], key

    def test_run_sweep_batched_table_is_byte_identical(self, medical_spec):
        from repro.experiments.sweep import run_sweep

        kwargs = dict(
            spec=medical_spec,
            designs=["Design1"],
            models=["Model1", "Model2"],
            seeds=[0, 1, 2],
        )
        serial = run_sweep(**kwargs)
        batched = run_sweep(batch=True, lanes=2, **kwargs)
        assert batched.render() == serial.render()
        assert serial.kernel_counts() == {"compiled": 6}
        assert batched.kernel_counts() == {"batched": 6}
        assert '"kernel": "batched"' in batched.as_json()

    def test_code_version_salt_covers_batch_module(self):
        import hashlib
        import os

        import repro
        from repro.exec.job import code_version_salt

        root = os.path.dirname(os.path.abspath(repro.__file__))

        def digest(skip=None):
            value = hashlib.sha256()
            for dirpath, dirnames, filenames in sorted(os.walk(root)):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, root)
                    if rel == skip:
                        continue
                    value.update(rel.encode())
                    with open(path, "rb") as handle:
                        value.update(handle.read())
            return value.hexdigest()

        batch_rel = os.path.join("sim", "batch.py")
        assert os.path.exists(os.path.join(root, batch_rel))
        # the salt is exactly the all-files digest, and dropping the
        # batch module changes it: editing batch.py orphans every
        # cached batched result
        assert code_version_salt() == digest()
        assert digest(skip=batch_rel) != digest()
