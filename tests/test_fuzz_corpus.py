"""Replay the persisted fuzzing regression corpus.

Every ``tests/corpus/*.spec`` entry is a shrunk reproduction of a bug
the fuzzer once caught (the ``-- bug:`` directive says which).  Each
must now sail through every oracle its directives enable — a failure
here means a fixed bug regressed."""

import os

import pytest

from repro.experiments.fuzzing import replay_corpus_entry
from repro.fuzz import iter_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = iter_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_stays_fixed(entry):
    failures = replay_corpus_entry(entry)
    assert not failures, "\n".join(f.describe() for f in failures)


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_documents_its_bug(entry):
    assert entry.bug.strip(), "corpus entries must carry a -- bug: line"
    entry.load_spec().validate()
