"""Structural tests for the VHDL backend (no VHDL simulator is
available offline, so the C backend carries the executable differential
testing; here we verify construct balance, declarations-before-use and
the statement mapping's fidelity)."""

import re

import pytest

from repro.apps.figures import figure1_specification, figure7_specification
from repro.apps.medical import design1_partition, medical_specification
from repro.export import VhdlExportError, export_vhdl
from repro.models import MODEL2
from repro.refine import Refiner
from repro.spec.builder import assign, conc, leaf, spec
from repro.spec.expr import var
from repro.spec.types import EnumType, int_type
from repro.spec.variable import Role, variable


@pytest.fixture(scope="module")
def medical_vhdl():
    return export_vhdl(medical_specification())


class TestEntity:
    def test_ports_from_roles(self, medical_vhdl):
        assert "patient_profile : in integer" in medical_vhdl
        assert "display_out : buffer integer" in medical_vhdl

    def test_entity_architecture_pair(self, medical_vhdl):
        assert "entity MedicalBVM is" in medical_vhdl
        assert "end entity MedicalBVM;" in medical_vhdl
        assert "architecture behavioral of MedicalBVM is" in medical_vhdl
        assert "end architecture behavioral;" in medical_vhdl

    def test_custom_entity_name(self):
        text = export_vhdl(figure1_specification(), entity_name="fig1_core")
        assert "entity fig1_core is" in text


class TestDeclarations:
    def test_array_type_declared_before_use(self, medical_vhdl):
        type_pos = medical_vhdl.find("type echo_buf_array_t is array")
        use_pos = medical_vhdl.find("echo_buf : echo_buf_array_t")
        assert 0 <= type_pos < use_pos

    def test_internal_variables_are_shared(self, medical_vhdl):
        assert "shared variable gain :" in medical_vhdl

    def test_integer_ranges_match_widths(self, medical_vhdl):
        assert "integer range -32768 to 32767" in medical_vhdl
        assert "integer range -8388608 to 8388607" in medical_vhdl  # 24-bit

    def test_enum_type_declaration(self):
        state = EnumType("mode_t", ("idle", "busy"))
        design = spec(
            "E",
            leaf("A", assign("m", "busy")),
            variables=[variable("m", state, init="idle")],
        )
        design.validate()
        text = export_vhdl(design)
        assert "type mode_t is (idle, busy);" in text
        assert "m := busy;" in text


class TestOutputPortShadows:
    def test_written_output_gets_shadow(self, medical_vhdl):
        assert "shared variable display_out_var :" in medical_vhdl
        assert "display_out <= display_out_var;" in medical_vhdl

    def test_reads_of_output_use_shadow(self, medical_vhdl):
        # Display clamps its own output: the comparison must read the
        # shadow, not the delta-delayed port
        assert "(display_out_var > 999)" in medical_vhdl


class TestStructureBalance:
    @pytest.mark.parametrize(
        "opener,closer",
        [
            ("process", "end process"),
            ("procedure ", "end procedure"),
            (" loop", "end loop;"),
            ("case ", "end case;"),
        ],
    )
    def test_balanced(self, medical_vhdl, opener, closer):
        opened = sum(
            1
            for line in medical_vhdl.splitlines()
            if opener in line and not line.strip().startswith("--")
            and "end" not in line.split(opener)[0].split()[-1:]
        )
        closed = medical_vhdl.count(closer)
        assert closed > 0
        # every closer closes an opener (procedure/process/loop counts
        # include the closers' own lines, so compare conservatively)
        assert closed * 2 >= opened

    def test_if_balance_exact(self, medical_vhdl):
        if_count = len(re.findall(r"^\s*if .* then$", medical_vhdl, re.M))
        end_if = medical_vhdl.count("end if;")
        assert if_count == end_if


class TestSequencer:
    def test_state_machine_for_sequential_composite(self, medical_vhdl):
        assert "type state_t is (S_Init, S_Calibrate, S_MeasureCycle, S_done);" in medical_vhdl
        assert "state := S_Calibrate;" in medical_vhdl

    def test_conditional_arcs_emitted(self, medical_vhdl):
        assert "if (cycle < num_cycles) then" in medical_vhdl


class TestConcurrentTops:
    def test_one_process_per_child(self):
        text = export_vhdl(figure7_specification())
        assert "B1_proc : process" in text
        assert "B2_proc : process" in text

    def test_refined_system_exports_with_multidriver_warning(self):
        medical = medical_specification()
        refined = Refiner(medical, design1_partition(medical), MODEL2).run()
        text = export_vhdl(refined.spec)
        assert "WARNING" in text
        assert "resolved/tri-state" in text
        # protocol procedures present inside the processes
        assert "procedure MST_send_b" in text
        # handshake signals declared at architecture level
        assert re.search(r"signal b\d+_start :", text)

    def test_single_partition_has_no_warning(self):
        text = export_vhdl(figure1_specification())
        assert "WARNING" not in text


class TestKeywordEscaping:
    def test_colliding_identifier_escaped(self):
        design = spec(
            "K",
            leaf("A", assign("map", var("map") + 1)),
            variables=[variable("map", int_type(), init=0)],
        )
        design.validate()
        text = export_vhdl(design)
        assert "\\map\\" in text


class TestWorkloadExports:
    """Structural export coverage for every registry workload — the
    executable cross-check lives in repro.export.validate."""

    def test_functional_export_is_balanced(self, workload):
        spec = workload.spec()
        spec.validate()
        try:
            text = export_vhdl(spec)
        except VhdlExportError as exc:
            # mesh-style nested concurrency is a documented rejection,
            # not a backend bug
            assert "nested concurrency" in str(exc)
            pytest.skip(f"{workload.id}: {exc}")
        assert f"entity {spec.name} is" in text
        assert text.count("process") >= 2  # open + matching end
        assert text.count("end if;") == len(
            re.findall(r"^\s*if .* then$", text, re.M)
        )

    def test_refined_default_design_exports(self, workload):
        spec = workload.spec()
        spec.validate()
        partition = workload.designs(spec)[workload.default_design]
        refined = Refiner(spec, partition, MODEL2).run()
        try:
            text = export_vhdl(
                refined.spec, entity_name=f"{spec.name}_refined"
            )
        except VhdlExportError as exc:
            assert "nested concurrency" in str(exc)
            pytest.skip(f"{workload.id}: {exc}")
        assert f"entity {spec.name}_refined is" in text
