"""Unit tests for the behavior hierarchy and specification container."""

import pytest

from repro.errors import ScopeError, SpecError
from repro.spec.behavior import CompositionMode, Transition
from repro.spec.builder import (
    assign,
    conc,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable, signal


def simple_abc():
    """The paper's Figure 1(a): behaviors A, B, C and variable x with
    conditional arcs A:(x>1,B) and A:(x<1,C)."""
    a = leaf("A", assign("x", var("x") + 1))
    b = leaf("B", assign("x", var("x") * 2))
    c = leaf("C", assign("x", 0))
    top = seq(
        "Main",
        [a, b, c],
        transitions=[
            transition("A", var("x") > 1, "B"),
            transition("A", var("x") < 1, "C"),
        ],
    )
    return spec("Example", top, variables=[variable("x", int_type(16), init=0)])


class TestBehaviorTree:
    def test_iter_tree_preorder(self):
        design = simple_abc()
        names = [b.name for b in design.behaviors()]
        assert names == ["Main", "A", "B", "C"]

    def test_find(self):
        design = simple_abc()
        assert design.find_behavior("B").name == "B"
        with pytest.raises(SpecError):
            design.find_behavior("Z")

    def test_parent_links(self):
        design = simple_abc()
        b = design.find_behavior("B")
        assert b.parent is design.top
        assert design.top.parent is None

    def test_ancestors_and_depth(self):
        inner = leaf("X", assign("v", 1))
        mid = seq("Mid", [inner])
        top = seq("Top", [mid])
        design = spec("S", top, variables=[variable("v", int_type())])
        x = design.find_behavior("X")
        assert [a.name for a in x.ancestors()] == ["Mid", "Top"]
        assert x.depth() == 2
        assert design.top.depth() == 0

    def test_duplicate_child_names_rejected(self):
        with pytest.raises(SpecError):
            seq("T", [leaf("A"), leaf("A")])

    def test_empty_composite_rejected(self):
        with pytest.raises(SpecError):
            seq("T", [])

    def test_concurrent_cannot_have_transitions(self):
        from repro.spec.behavior import CompositeBehavior

        with pytest.raises(SpecError):
            CompositeBehavior(
                "T",
                [leaf("A")],
                mode=CompositionMode.CONCURRENT,
                transitions=[Transition("A", None, None)],
            )


class TestTransitions:
    def test_transitions_from_priority_order(self):
        design = simple_abc()
        arcs = design.top.transitions_from("A")
        assert len(arcs) == 2
        assert arcs[0].target == "B"
        assert arcs[1].target == "C"

    def test_transitions_into(self):
        design = simple_abc()
        assert [t.source for t in design.top.transitions_into("B")] == ["A"]

    def test_completion_arc(self):
        arc = on_complete("B")
        assert arc.is_completion

    def test_initial_defaults_to_first_child(self):
        design = simple_abc()
        assert design.top.initial == "A"

    def test_bad_initial_rejected(self):
        with pytest.raises(SpecError):
            seq("T", [leaf("A")], initial="Q")


class TestReplaceChild:
    def test_replace_keeps_arcs(self):
        design = simple_abc()
        b_ctrl = leaf("B_CTRL", assign("x", var("x")))
        design.top.replace_child("B", b_ctrl)
        design.link()
        arcs = design.top.transitions_from("A")
        assert arcs[0].target == "B_CTRL"
        assert design.top.child("B_CTRL") is b_ctrl
        assert not design.top.has_child("B")

    def test_replace_renames_initial(self):
        design = simple_abc()
        design.top.replace_child("A", leaf("A_CTRL"))
        assert design.top.initial == "A_CTRL"

    def test_replace_missing_child(self):
        design = simple_abc()
        with pytest.raises(SpecError):
            design.top.replace_child("Q", leaf("R"))


class TestScoping:
    def make(self):
        inner = leaf("In", assign("loc", var("glob") + var("mid")))
        inner.add_decl(variable("loc", int_type()))
        middle = seq("Mid", [inner])
        middle.add_decl(variable("mid", int_type()))
        design = spec(
            "S", seq("Top", [middle]), variables=[variable("glob", int_type())]
        )
        return design

    def test_resolve_local(self):
        design = self.make()
        inner = design.find_behavior("In")
        assert design.resolve("loc", inner).name == "loc"

    def test_resolve_ancestor(self):
        design = self.make()
        inner = design.find_behavior("In")
        assert design.resolve("mid", inner).name == "mid"

    def test_resolve_global(self):
        design = self.make()
        inner = design.find_behavior("In")
        assert design.resolve("glob", inner).name == "glob"

    def test_resolve_missing(self):
        design = self.make()
        inner = design.find_behavior("In")
        with pytest.raises(ScopeError):
            design.resolve("nope", inner)

    def test_declaring_behavior(self):
        design = self.make()
        inner = design.find_behavior("In")
        assert design.declaring_behavior("loc", inner).name == "In"
        assert design.declaring_behavior("mid", inner).name == "Mid"
        assert design.declaring_behavior("glob", inner) is None

    def test_shadowing_resolves_innermost(self):
        inner = leaf("In", assign("v", 1))
        inner.add_decl(variable("v", int_type(8)))
        design = spec(
            "S", seq("Top", [inner]), variables=[variable("v", int_type(32))]
        )
        resolved = design.resolve("v", design.find_behavior("In"))
        assert resolved.dtype.width == 8

    def test_duplicate_decl_rejected(self):
        b = leaf("A")
        b.add_decl(variable("v", int_type()))
        with pytest.raises(SpecError):
            b.add_decl(variable("v", int_type()))


class TestSpecificationContainer:
    def test_copy_is_deep(self):
        design = simple_abc()
        clone = design.copy()
        clone.find_behavior("A").name = "A2"
        assert design.find_behavior("A").name == "A"
        clone.variables[0].init = 99
        assert design.variables[0].init == 0

    def test_stats(self):
        design = simple_abc()
        stats = design.stats()
        assert stats.behaviors == 4
        assert stats.leaf_behaviors == 3
        assert stats.variables == 1
        assert stats.transitions == 2
        assert stats.statements == 3

    def test_inputs_outputs(self):
        design = spec(
            "S",
            leaf("A", assign("o", var("i"))),
            variables=[
                variable("i", int_type(), role=Role.INPUT),
                variable("o", int_type(), role=Role.OUTPUT),
            ],
        )
        assert [v.name for v in design.inputs()] == ["i"]
        assert [v.name for v in design.outputs()] == ["o"]

    def test_add_global_duplicate(self):
        design = simple_abc()
        with pytest.raises(SpecError):
            design.add_global(variable("x", int_type()))

    def test_ensure_subprogram_idempotent(self):
        from repro.spec.subprogram import Subprogram

        design = simple_abc()
        first = design.ensure_subprogram(Subprogram("p"))
        second = design.ensure_subprogram(Subprogram("p"))
        assert first is second
        assert len(design.subprograms) == 1
