"""Fault-injection layer: scenarios, injector, kernel hooks, and the
dropped-acknowledge acceptance path."""

import pytest

from repro.errors import DeadlockError, FaultConfigError
from repro.sim.faults import FaultEvent, FaultInjector, FaultScenario
from repro.sim.kernel import Kernel, WaitCondition, WaitDelay


class TestScenarioValidation:
    def test_unknown_kind(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultScenario(name="x", kind="explode", target="*")

    def test_count_must_be_positive(self):
        with pytest.raises(FaultConfigError, match="count"):
            FaultScenario(name="x", kind="drop", target="*", count=0)

    def test_probability_range(self):
        with pytest.raises(FaultConfigError, match="probability"):
            FaultScenario(name="x", kind="drop", target="*", probability=0.0)
        with pytest.raises(FaultConfigError, match="probability"):
            FaultScenario(name="x", kind="drop", target="*", probability=1.5)

    def test_delay_kinds_need_delay(self):
        with pytest.raises(FaultConfigError, match="positive delay"):
            FaultScenario(name="x", kind="delay", target="*")
        with pytest.raises(FaultConfigError, match="positive delay"):
            FaultScenario(name="x", kind="stall", target="*")

    def test_expect_vocabulary(self):
        with pytest.raises(FaultConfigError, match="expect"):
            FaultScenario(name="x", kind="drop", target="*", expect="hope")

    def test_scaled_multiplies_time_fields(self):
        s = FaultScenario(
            name="x", kind="delay", target="*", delay=5.0, after=2.0
        )
        scaled = s.scaled(1e-9)
        assert scaled.delay == pytest.approx(5e-9)
        assert scaled.after == pytest.approx(2e-9)
        assert scaled.name == s.name and scaled.kind == s.kind


class TestInjectorMatching:
    def test_glob_targets(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="drop", target="b*_done", count=99)]
        )
        assert inj.on_signal_write(0.0, "b1_done", 1)[0] == "drop"
        assert inj.on_signal_write(0.0, "b2_done", 1)[0] == "drop"
        # control-refinement completion signals are NOT bus signals
        assert inj.on_signal_write(0.0, "Acquire_done", 1)[0] == "pass"

    def test_count_budget_is_consumed(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="drop", target="s", count=2)]
        )
        assert inj.on_signal_write(0.0, "s", 1)[0] == "drop"
        assert inj.on_signal_write(0.0, "s", 2)[0] == "drop"
        assert inj.on_signal_write(0.0, "s", 3)[0] == "pass"
        assert inj.fired == 2
        assert inj.fired_for("d") == 2

    def test_after_gates_activation(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="drop", target="s", after=10.0)]
        )
        assert inj.on_signal_write(5.0, "s", 1)[0] == "pass"
        assert inj.on_signal_write(15.0, "s", 1)[0] == "drop"

    def test_flip_bit(self):
        inj = FaultInjector(
            [FaultScenario(name="f", kind="flip_bit", target="d", bit=2)]
        )
        action, payload = inj.on_signal_write(0.0, "d", 8)
        assert (action, payload) == ("corrupt", 8 ^ 4)

    def test_flip_bit_passes_non_integers(self):
        inj = FaultInjector(
            [FaultScenario(name="f", kind="flip_bit", target="d")]
        )
        action, payload = inj.on_signal_write(0.0, "d", (1, 2))
        assert (action, payload) == ("pass", (1, 2))
        assert "skipped" in inj.events[0].detail

    def test_process_faults_only_match_process_hook(self):
        inj = FaultInjector(
            [FaultScenario(name="k", kind="kill", target="daemon")]
        )
        assert inj.on_signal_write(0.0, "daemon", 1)[0] == "pass"
        assert inj.on_activation(0.0, "daemon")[0] == "kill"

    def test_deterministic_sequences_same_seed(self):
        def run(seed):
            inj = FaultInjector(
                [
                    FaultScenario(
                        name="p", kind="drop", target="s",
                        count=100, probability=0.5,
                    )
                ],
                seed=seed,
            )
            return [inj.on_signal_write(0.0, "s", i)[0] for i in range(40)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_probability_one_consumes_no_randomness(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="drop", target="s", count=3)],
            seed=7,
        )
        state = inj._rng.getstate()
        for i in range(5):
            inj.on_signal_write(0.0, "s", i)
        assert inj._rng.getstate() == state

    def test_event_rendering(self):
        e = FaultEvent(1.5, "scn", "drop", "b1_done", "suppressed value 1")
        assert str(e) == "t=1.5 [scn] drop b1_done (suppressed value 1)"


class TestKernelIntegration:
    def _handshake_kernel(self, injector):
        """A 2-process req/ack handshake on a fresh kernel."""
        k = Kernel(injector=injector)
        k.register_signal("req", 0)
        k.register_signal("ack", 0)
        log = []

        def master():
            k.write_signal("req", 1)
            yield WaitCondition(lambda: k.read_signal("ack") == 1, {"ack"})
            log.append("acked")

        def slave():
            yield WaitCondition(lambda: k.read_signal("req") == 1, {"req"})
            k.write_signal("ack", 1)

        m = k.spawn("master", master())
        k.spawn("slave", slave())
        return k, m, log

    def test_drop_loses_the_acknowledge(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="drop", target="ack")]
        )
        k, master, log = self._handshake_kernel(inj)
        k.run()
        assert log == [] and not master.finished
        assert inj.fired == 1

    def test_delayed_write_arrives_later(self):
        inj = FaultInjector(
            [FaultScenario(name="d", kind="delay", target="ack", delay=7.0)]
        )
        k, master, log = self._handshake_kernel(inj)
        k.run()
        assert log == ["acked"] and master.finished
        assert k.now == 7.0  # the deferred update advanced time

    def test_corrupt_substitutes_value(self):
        inj = FaultInjector(
            [
                FaultScenario(
                    name="c", kind="corrupt", target="data", value=99
                )
            ]
        )
        k = Kernel(injector=inj)
        k.register_signal("data", 0)

        def writer():
            k.write_signal("data", 5)
            yield WaitDelay(1)

        k.spawn("w", writer())
        k.run()
        assert k.read_signal("data") == 99

    def test_kill_finishes_process_and_wakes_joiners(self):
        from repro.sim.kernel import Join

        inj = FaultInjector(
            [FaultScenario(name="k", kind="kill", target="victim")]
        )
        k = Kernel(injector=inj)
        log = []

        def victim():
            yield WaitDelay(5)
            log.append("victim ran")

        def parent():
            child = k.spawn("victim", victim())
            yield Join([child])
            log.append("joined")

        k.spawn("parent", parent())
        k.run()
        assert log == ["joined"]  # victim never ran but the join resolved
        assert inj.fired == 1

    def test_stall_defers_activation(self):
        inj = FaultInjector(
            [FaultScenario(name="s", kind="stall", target="p", delay=9.0)]
        )
        k = Kernel(injector=inj)
        log = []

        def proc():
            log.append(k.now)
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert log == [9.0]


class TestDroppedAcknowledgeAcceptance:
    """The issue's acceptance path: a dropped bus acknowledge under the
    plain (non-recovering) handshake must surface as a structured
    DeadlockError naming blocked bus machinery, never a raw step-limit
    crash; the timeout protocol must absorb the same fault."""

    @pytest.fixture(scope="class")
    def medical(self):
        from repro.apps.medical import (
            MEDICAL_INPUTS,
            all_designs,
            medical_specification,
        )
        from repro.experiments.figure9 import default_allocation

        spec = medical_specification()
        spec.validate()
        return spec, all_designs(spec), default_allocation(), dict(MEDICAL_INPUTS)

    def _refined(self, medical, protocol):
        from repro.models import resolve_model
        from repro.refine import Refiner

        spec, designs, allocation, _ = medical
        return Refiner(
            spec,
            designs["Design1"],
            resolve_model("Model4"),
            allocation=allocation,
            protocol=protocol,
        ).run()

    def _drop_done(self):
        return FaultInjector(
            [FaultScenario(name="drop-done", kind="drop", target="b*_done")],
            seed=1996,
        )

    def test_plain_handshake_deadlocks_with_diagnosis(self, medical):
        from repro.sim.equivalence import check_equivalence

        design = self._refined(medical, "handshake")
        with pytest.raises(DeadlockError) as excinfo:
            check_equivalence(
                design,
                inputs=medical[3],
                injector=self._drop_done(),
                require_completion=True,
            )
        message = str(excinfo.value)
        assert "deadlock at t=" in message
        assert "BI_" in message          # bus-interface daemons are listed
        assert "sensitivity=" in message  # with their sensitivity lists
        assert "last scheduler events" in message

    def test_timeout_protocol_recovers_same_fault(self, medical):
        from repro.sim.equivalence import check_equivalence

        design = self._refined(medical, "handshake-timeout")
        injector = self._drop_done()
        report = check_equivalence(
            design,
            inputs=medical[3],
            injector=injector,
            require_completion=True,
        )
        assert report.equivalent
        assert injector.fired == 1  # the fault really happened
