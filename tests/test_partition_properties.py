"""Hypothesis property tests: the automatic partitioners over
fuzz-generated specifications, and the exploration frontier's
dominance invariants.

The fuzz generator builds valid specs with distinct behavior/variable
namespaces by construction, so every generated case must partition
cleanly under all three algorithms — coverage of the whole move space,
no regression past the round-robin start, and seeded determinism.
"""

from functools import lru_cache

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.exec import canonical_partition
from repro.experiments.explore import DesignPoint, ParetoFrontier, _dominates
from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.graph.access_graph import AccessGraph
from repro.partition.auto import (
    annealed_partition,
    greedy_partition,
    kl_partition,
    movable_objects,
)
from repro.partition.metrics import partition_cost
from repro.partition.partition import Partition

CONFIG = GeneratorConfig(budget=14)
COMPONENTS = ("SW", "HW")

ALGORITHMS = {
    "greedy": lambda spec, graph: greedy_partition(
        spec, COMPONENTS, graph=graph
    ),
    "kl": lambda spec, graph: kl_partition(
        spec, COMPONENTS, graph=graph, max_passes=3
    ),
    "annealed": lambda spec, graph: annealed_partition(
        spec, COMPONENTS, graph=graph, seed=11, steps=200
    ),
}

seeds = st.integers(min_value=0, max_value=60)
algorithms = st.sampled_from(sorted(ALGORITHMS))


@lru_cache(maxsize=None)
def generated(seed):
    case = generate_case(seed, CONFIG)
    graph = AccessGraph.from_specification(case.spec)
    return case.spec, graph


def round_robin(spec, graph):
    objects = movable_objects(spec, graph)
    return Partition(
        spec,
        {
            obj: COMPONENTS[index % len(COMPONENTS)]
            for index, obj in enumerate(objects)
        },
        name="round-robin",
    )


class TestPartitionerProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, algorithm=algorithms)
    def test_covers_every_leaf_and_variable(self, seed, algorithm):
        spec, graph = generated(seed)
        result = ALGORITHMS[algorithm](spec, graph)
        expected = set(movable_objects(spec, graph))
        assert set(result.assignment) == expected
        for leaf in spec.leaf_behaviors():
            result.component_of_behavior(leaf.name)  # must resolve
        assert set(result.components()) <= set(COMPONENTS)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, algorithm=algorithms)
    def test_cost_not_worse_than_round_robin(self, seed, algorithm):
        spec, graph = generated(seed)
        result = ALGORITHMS[algorithm](spec, graph)
        baseline = round_robin(spec, graph)
        assert (
            partition_cost(graph, result)
            <= partition_cost(graph, baseline) + 1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, algorithm=algorithms)
    def test_seeded_determinism(self, seed, algorithm):
        spec, graph = generated(seed)
        first = ALGORITHMS[algorithm](spec, graph)
        second = ALGORITHMS[algorithm](spec, graph)
        assert repr(canonical_partition(first)) == repr(
            canonical_partition(second)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_partitioners_never_mutate_their_seed(self, seed):
        spec, graph = generated(seed)
        base = greedy_partition(spec, COMPONENTS, graph=graph)
        keep = Partition(spec, base.assignment, name="pinned")
        kl_partition(spec, COMPONENTS, graph=graph, seed_partition=keep)
        annealed_partition(
            spec, COMPONENTS, graph=graph, steps=50, seed_partition=keep
        )
        assert keep.name == "pinned"
        assert keep.assignment == base.assignment


objective_vectors = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.floats(
            min_value=0.0, max_value=100.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=1,
    max_size=24,
)


def _points(vectors):
    return [
        DesignPoint(
            allocation="a", recipe=f"r{index}", model="m", protocol="p",
            traffic=traffic, refined_lines=lines, cost=cost,
        )
        for index, (traffic, lines, cost) in enumerate(vectors)
    ]


class TestFrontierProperties:
    @settings(max_examples=80, deadline=None)
    @given(vectors=objective_vectors)
    def test_frontier_is_mutually_non_dominated(self, vectors):
        frontier = ParetoFrontier()
        for point in _points(vectors):
            frontier.add(point)
        members = frontier.points
        for a in members:
            for b in members:
                if a is not b:
                    assert not _dominates(a.objectives(), b.objectives())
                    assert a.objectives() != b.objectives()

    @settings(max_examples=80, deadline=None)
    @given(vectors=objective_vectors)
    def test_every_candidate_is_covered_by_the_frontier(self, vectors):
        """Every seen point is on the frontier, or some member is at
        least as good on every objective."""
        frontier = ParetoFrontier()
        points = _points(vectors)
        for point in points:
            frontier.add(point)
        for point in points:
            objectives = point.objectives()
            assert any(
                all(m <= o for m, o in zip(member.objectives(), objectives))
                for member in frontier.points
            )

    @settings(max_examples=80, deadline=None)
    @given(vectors=objective_vectors)
    def test_insertion_order_does_not_change_the_vector_set(self, vectors):
        forward = ParetoFrontier()
        for point in _points(vectors):
            forward.add(point)
        backward = ParetoFrontier()
        for point in reversed(_points(vectors)):
            backward.add(point)
        assert {p.objectives() for p in forward.points} == {
            p.objectives() for p in backward.points
        }
