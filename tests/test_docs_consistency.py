"""The docs-consistency gate: docs/API.md must mention every public name.

Runs the same logic as ``scripts/check_docs_consistency.py`` (CI invokes
the script directly too; this test keeps the gate inside ``pytest -x``).
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs_consistency.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs_consistency", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsConsistency:
    def test_every_export_is_documented(self):
        checker = load_checker()
        doc_text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        missing = checker.undocumented_names(doc_text)
        assert missing == [], (
            "docs/API.md is missing public names: "
            + ", ".join(f"{pkg}.{name}" for pkg, name in missing)
        )

    def test_detects_drift(self):
        checker = load_checker()
        # wipe one documented name from the text; the checker must notice
        doc_text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        broken = doc_text.replace("SimMetrics", "XimXetrics")
        missing = checker.undocumented_names(broken)
        assert ("repro.sim", "SimMetrics") in missing

    def test_batch_exports_are_gated(self):
        # the repro.sim __all__ carries the batch engine names, so the
        # gate breaks if docs/API.md ever drops them
        checker = load_checker()
        doc_text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        broken = doc_text.replace("BatchSimulator", "XatchXimulator")
        missing = checker.undocumented_names(broken)
        assert ("repro.sim", "BatchSimulator") in missing

    def test_every_doc_is_linked_from_readme(self):
        checker = load_checker()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert checker.unlinked_docs(readme) == []

    def test_detects_unlinked_doc(self):
        checker = load_checker()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        broken = readme.replace("docs/SIMULATION.md", "docs/XIMULATION.md")
        assert "docs/SIMULATION.md" in checker.unlinked_docs(broken)

    def test_script_entry_point(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout
