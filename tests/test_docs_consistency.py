"""The docs-consistency gate: docs/API.md must mention every public name.

Runs the same logic as ``scripts/check_docs_consistency.py`` (CI invokes
the script directly too; this test keeps the gate inside ``pytest -x``).
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs_consistency.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs_consistency", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsConsistency:
    def test_every_export_is_documented(self):
        checker = load_checker()
        doc_text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        missing = checker.undocumented_names(doc_text)
        assert missing == [], (
            "docs/API.md is missing public names: "
            + ", ".join(f"{pkg}.{name}" for pkg, name in missing)
        )

    def test_detects_drift(self):
        checker = load_checker()
        # wipe one documented name from the text; the checker must notice
        doc_text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        broken = doc_text.replace("SimMetrics", "XimXetrics")
        missing = checker.undocumented_names(broken)
        assert ("repro.sim", "SimMetrics") in missing

    def test_script_entry_point(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout
