"""Tests for the multi-objective exploration campaign
(:mod:`repro.experiments.explore` + the ``explore-cell`` /
``explore-batch`` tasks)."""

import json

import pytest

from repro.errors import ReproError
from repro.exec import ExecutionEngine, ResultCache
from repro.experiments.explore import (
    DesignPoint,
    ParetoFrontier,
    QualityCache,
    QualityEvaluator,
    run_explore,
    validate_explore_report,
)
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry

SMALL = dict(allocations=["paper"], models=["Model1", "Model2"])


def point(traffic, lines, cost, recipe="r", **kw):
    return DesignPoint(
        allocation=kw.get("allocation", "paper"), recipe=recipe,
        model=kw.get("model", "Model1"), protocol="handshake",
        traffic=traffic, refined_lines=lines, cost=cost,
    )


class TestParetoFrontier:
    def test_dominated_candidate_is_rejected(self):
        frontier = ParetoFrontier()
        assert frontier.add(point(10, 10, 10.0))
        assert not frontier.add(point(11, 11, 11.0))
        assert len(frontier) == 1

    def test_dominating_candidate_evicts(self):
        frontier = ParetoFrontier()
        frontier.add(point(10, 10, 10.0))
        assert frontier.add(point(9, 9, 9.0))
        assert len(frontier) == 1
        assert frontier.points[0].traffic == 9

    def test_incomparable_points_coexist(self):
        frontier = ParetoFrontier()
        frontier.add(point(10, 5, 10.0))
        assert frontier.add(point(5, 10, 10.0))
        assert len(frontier) == 2

    def test_exact_tie_keeps_first(self):
        frontier = ParetoFrontier()
        frontier.add(point(10, 10, 10.0, recipe="first"))
        assert not frontier.add(point(10, 10, 10.0, recipe="second"))
        assert frontier.points[0].recipe == "first"


class TestQualityComponents:
    def test_evaluator_baseline_scores_one(self):
        evaluator = QualityEvaluator()
        base = point(10, 20, 30.0)
        assert evaluator.score(base) == 1.0
        better = point(5, 10, 15.0)
        worse = point(20, 40, 60.0)
        assert evaluator.score(better) > 1.0 > evaluator.score(worse)

    def test_cache_keeps_top_k_deterministically(self):
        cache = QualityCache(top_k=2)
        cache.offer("paper", "greedy", 1.0, "pg")
        cache.offer("paper", "annealed@1", 1.2, "pa1")
        cache.offer("paper", "annealed@2", 1.1, "pa2")
        assert cache.winners("paper") == [("annealed@1", "pa1"),
                                          ("annealed@2", "pa2")]
        # a recipe's best score counts, and ties break by recipe name
        cache.offer("paper", "greedy", 1.2, "pg")
        assert cache.winners("paper") == [("annealed@1", "pa1"),
                                          ("greedy", "pg")]

    def test_cache_is_per_allocation(self):
        cache = QualityCache(top_k=1)
        cache.offer("paper", "greedy", 1.0, "pg")
        assert cache.winners("dual-asic") == []


class TestRunExplore:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_explore(**SMALL)

    def test_report_is_reproducible_and_beats_exhaustive(self, campaign):
        rendered = campaign.render()
        assert "Pareto frontier" in rendered
        assert campaign.cells_evaluated < campaign.exhaustive_cells
        assert campaign.cells_evaluated == len(campaign.evaluated)
        again = run_explore(**SMALL)
        assert again.render() == rendered

    def test_json_report_validates(self, campaign):
        data = json.loads(campaign.as_json())
        validate_explore_report(data)
        assert data["stop"]["reason"] in (
            "layers-exhausted", "frontier-converged", "cell-budget"
        )

    def test_validator_rejects_tampered_report(self, campaign):
        data = json.loads(campaign.as_json())
        data["cells_evaluated"] = data["exhaustive_cells"] + 1
        with pytest.raises(ReproError):
            validate_explore_report(data)
        data = json.loads(campaign.as_json())
        del data["stop"]
        with pytest.raises(ReproError):
            validate_explore_report(data)

    def test_batch_mode_is_byte_identical(self, campaign):
        batched = run_explore(**SMALL, batch=True)
        assert batched.render() == campaign.render()
        assert batched.as_json() == campaign.as_json()

    def test_warm_cache_is_byte_identical(self, campaign, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cold = run_explore(**SMALL, engine=ExecutionEngine(cache=cache))
        warm_engine = ExecutionEngine(cache=cache)
        warm = run_explore(**SMALL, engine=warm_engine)
        assert cold.render() == warm.render() == campaign.render()
        assert warm_engine.metrics.cache_hits > 0
        assert warm_engine.metrics.executed == 0

    def test_cell_budget_stops_deterministically(self):
        result = run_explore(**SMALL, max_cells=1)
        assert result.cells_evaluated == 1
        assert result.stop.reason == "cell-budget"
        assert result.stop.layer == 1

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ReproError):
            run_explore(allocations=["nonesuch"])
        with pytest.raises(ReproError):
            run_explore(models=["Model9"])
        with pytest.raises(ReproError):
            run_explore(top_k=0)

    def test_telemetry_threads_through_engine(self, tmp_path):
        journal = EventJournal(keep=True)
        registry = MetricsRegistry()
        engine = ExecutionEngine(journal=journal, registry=registry)
        result = run_explore(**SMALL, engine=engine)
        kinds = [record["kind"] for record in journal.records]
        assert kinds[0] == "campaign-start"
        assert kinds[-1] == "campaign-complete"
        assert "explore-layer-start" in kinds
        assert "explore-layer-complete" in kinds
        run_ids = {record["request_id"] for record in journal.records}
        assert len(run_ids) == 1
        assert next(iter(run_ids)).startswith("explore-")
        evaluated = registry.counter(
            "repro_explore_cells_total", "", ("outcome",)
        ).labels("evaluated").value
        assert evaluated == result.cells_evaluated
        assert registry.gauge(
            "repro_explore_frontier_size", ""
        ).value == len(result.frontier)
