"""The event journal and end-to-end request correlation: record
schema, contextvar binding, the flight-recorder ring, engine job
events, campaign events, and one request traced by a single ID from
the client log through the server journal into engine events, spans
and the crash flight dump."""

import json
import os
import threading

import pytest

from repro.exec import ExecutionEngine, Job, SerialExecutor, register
from repro.obs.events import (
    EventJournal,
    FlightRecorder,
    NULL_JOURNAL,
    bind_request_id,
    current_request_id,
    new_request_id,
    read_journal,
    validate_journal,
)
from repro.obs.metrics import MetricsRegistry, parse_exposition, validate_exposition
from repro.serve import ReproClient, ReproServer, ServeConfig


@register("test-obs-echo")
def _echo(params):
    return {"value": params["value"]}


# -- journal basics -----------------------------------------------------------


def test_emit_schema_and_file_sink(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = EventJournal(path=path, keep=True, clock=lambda: 12.5)
    record = journal.emit("unit-test", request_id="req-1", detail="x")
    assert record == {
        "ts": 12.5, "kind": "unit-test", "request_id": "req-1", "detail": "x",
    }
    journal.emit("second")
    journal.close()
    loaded = read_journal(path)
    assert validate_journal(loaded) == 2
    assert loaded == journal.records
    assert journal.emitted == 2


def test_emit_picks_up_bound_request_id():
    journal = EventJournal(keep=True)
    assert current_request_id() == ""
    with bind_request_id("outer"):
        journal.emit("a")
        with bind_request_id("inner"):
            journal.emit("b")
        journal.emit("c")
    journal.emit("d")
    assert [r["request_id"] for r in journal.records] == [
        "outer", "inner", "outer", "",
    ]


def test_bindings_are_per_thread():
    seen = {}

    def worker():
        seen["thread"] = current_request_id()

    with bind_request_id("main-only"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["thread"] == ""


def test_new_request_id_shape():
    rid = new_request_id()
    assert len(rid) == 16 and rid != new_request_id()
    assert all(c in "0123456789abcdef" for c in rid)


def test_validate_journal_rejects_bad_records():
    with pytest.raises(ValueError, match="ts"):
        validate_journal([{"kind": "x", "request_id": ""}])
    with pytest.raises(ValueError, match="kind"):
        validate_journal([{"ts": 1.0, "kind": "", "request_id": ""}])
    with pytest.raises(ValueError, match="request_id"):
        validate_journal('{"ts": 1.0, "kind": "x"}')
    with pytest.raises(ValueError, match="record 2"):
        validate_journal(
            '{"ts": 1, "kind": "a", "request_id": ""}\n[1, 2]'
        )


def test_null_journal_is_inert():
    assert NULL_JOURNAL.enabled is False
    assert NULL_JOURNAL.emit("anything", request_id="r", x=1) is None
    assert NULL_JOURNAL.emitted == 0
    NULL_JOURNAL.close()


# -- flight recorder ----------------------------------------------------------


def test_flight_recorder_ring_is_bounded(tmp_path):
    recorder = FlightRecorder(capacity=3)
    journal = EventJournal(recorder=recorder)
    for index in range(5):
        journal.emit("tick", request_id=f"r{index}")
    ring = recorder.snapshot()
    assert [r["request_id"] for r in ring] == ["r2", "r3", "r4"]
    path = recorder.dump(str(tmp_path), "crash", request_id="r4")
    assert os.path.basename(path).startswith("flight_crash_r4_")
    with open(path) as handle:
        dump = json.load(handle)
    assert dump["reason"] == "crash"
    assert dump["request_id"] == "r4"
    assert len(dump["events"]) == 3
    assert recorder.dumps == 1


def test_flight_recorder_slugs_reason_and_unknown_rid(tmp_path):
    recorder = FlightRecorder(capacity=2)
    path = recorder.dump(str(tmp_path), "weird reason/../x")
    name = os.path.basename(path)
    assert "/.." not in name
    assert "_unknown_" in name


# -- engine correlation -------------------------------------------------------


def _engine(journal, registry=None):
    return ExecutionEngine(
        executor=SerialExecutor(), cache=None,
        journal=journal, registry=registry,
    )


def test_engine_emits_grid_and_job_events_with_one_run_id():
    journal = EventJournal(keep=True)
    engine = _engine(journal)
    engine.run([Job("test-obs-echo", {"value": 1}),
                Job("test-obs-echo", {"value": 2})])
    kinds = [r["kind"] for r in journal.records]
    assert kinds[0] == "grid-start" and kinds[-1] == "grid-complete"
    assert kinds.count("job-complete") == 2
    run_ids = {r["request_id"] for r in journal.records}
    assert len(run_ids) == 1
    assert next(iter(run_ids)).startswith("run-")


def test_engine_inherits_bound_request_id():
    journal = EventJournal(keep=True)
    engine = _engine(journal)
    with bind_request_id("req-abc"):
        engine.run([Job("test-obs-echo", {"value": 1})])
    assert {r["request_id"] for r in journal.records} == {"req-abc"}


def test_engine_metrics_count_jobs():
    registry = MetricsRegistry()
    engine = _engine(NULL_JOURNAL, registry)
    engine.run([Job("test-obs-echo", {"value": 1})])
    snapshot = registry.snapshot()
    (series,) = snapshot["repro_exec_jobs_total"]["series"]
    assert series == {"labels": {"outcome": "ok"}, "value": 1.0}
    (latency,) = snapshot["repro_exec_job_seconds"]["series"]
    assert latency["count"] == 1


def test_campaign_events_share_a_sweep_run_id():
    from repro.experiments.sweep import run_sweep

    journal = EventJournal(keep=True)
    result = run_sweep(
        designs=["Design1"], models=["Model1"], engine=_engine(journal)
    )
    assert result.ok
    kinds = [r["kind"] for r in journal.records]
    assert kinds[0] == "campaign-start" and kinds[-1] == "campaign-complete"
    run_ids = {r["request_id"] for r in journal.records}
    assert len(run_ids) == 1 and next(iter(run_ids)).startswith("sweep-")


# -- end-to-end serve correlation ---------------------------------------------


@pytest.fixture
def telemetry_server(tmp_path):
    from repro.serve.chaos import register_chaos_tasks

    register_chaos_tasks()
    instance = ReproServer(
        ServeConfig(
            port=0,
            workers=1,
            queue_limit=4,
            cache_dir=str(tmp_path / "cache"),
            chaos=True,
            trace=True,
            journal_path=str(tmp_path / "journal.jsonl"),
            flight_dir=str(tmp_path / "flight"),
        )
    ).start()
    yield instance
    instance.close()


def test_request_id_threads_client_server_engine_span(
    telemetry_server, tmp_path
):
    server = telemetry_server
    client_journal = EventJournal(keep=True)
    client = ReproClient(port=server.port, journal=client_journal)
    assert client.wait_ready()

    response = client.submit(
        "chaos-sleep", {"seconds": 0.01}, request_id="trace-me-001"
    )
    assert response.ok
    # the server echoes the ID back
    assert response.request_id == "trace-me-001"
    # client journal carries it
    assert any(
        r["request_id"] == "trace-me-001" and r["kind"] == "client-final"
        for r in client_journal.records
    )
    # server journal carries the whole lifecycle under the same ID
    kinds = [
        r["kind"]
        for r in server.recorder.snapshot()
        if r["request_id"] == "trace-me-001"
    ]
    for expected in (
        "request-received", "request-queued", "request-dispatched",
        "grid-start", "job-complete", "grid-complete", "request-complete",
    ):
        assert expected in kinds, (expected, kinds)
    # spans carry it as an attribute
    trace = server.trace_events()
    assert any(
        event.get("args", {}).get("request_id") == "trace-me-001"
        for event in trace["traceEvents"]
    )
    # journal file validates and shares the ID
    records = read_journal(str(tmp_path / "journal.jsonl"))
    assert validate_journal(records) == len(records)
    assert any(r["request_id"] == "trace-me-001" for r in records)


def test_metrics_endpoint_validates_with_nonzero_counts(telemetry_server):
    server = telemetry_server
    client = ReproClient(port=server.port)
    assert client.wait_ready()
    assert client.submit("chaos-sleep", {"seconds": 0.0}).ok
    text = client.metrics_text()
    assert validate_exposition(text) > 0
    parsed = parse_exposition(text)

    def count_of(family):
        return [
            value
            for name, _, value in parsed[family]["samples"]
            if name == f"{family}_count"
        ][0]

    assert count_of("repro_serve_request_seconds") >= 1
    assert count_of("repro_exec_job_seconds") >= 1
    stats = client.stats()
    assert stats["telemetry"]["enabled"] is True
    assert stats["telemetry"]["events_emitted"] > 0


def test_worker_crash_dumps_flight_recorder(telemetry_server, tmp_path):
    server = telemetry_server
    client = ReproClient(port=server.port)
    assert client.wait_ready()
    response = client.submit("chaos-crash", {}, request_id="crash-req-9")
    assert response.status == 500
    assert response.error_kind() == "crash"
    dumps = os.listdir(tmp_path / "flight")
    matching = [name for name in dumps if "crash-req-9" in name]
    assert matching, dumps
    with open(tmp_path / "flight" / matching[0]) as handle:
        dump = json.load(handle)
    assert dump["request_id"] == "crash-req-9"
    assert any(
        event["request_id"] == "crash-req-9" for event in dump["events"]
    )
    stats = client.stats()
    assert stats["telemetry"]["flight_dumps"] >= 1


def test_invalid_header_request_id_is_replaced(telemetry_server):
    server = telemetry_server
    client = ReproClient(port=server.port)
    assert client.wait_ready()
    response = client.submit(
        "chaos-sleep", {"seconds": 0.0}, request_id="bad id with junk!"
    )
    assert response.ok
    rid = response.request_id
    assert rid and rid != "bad id with junk!"
    assert len(rid) == 16  # a freshly minted one


def test_telemetry_off_disables_surfaces(tmp_path):
    instance = ReproServer(
        ServeConfig(
            port=0,
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry=False,
        )
    ).start()
    try:
        client = ReproClient(port=instance.port)
        assert client.wait_ready()
        assert client.metrics_text() == ""
        assert client.request("GET", "/metrics").status == 404
        stats = client.stats()
        assert stats["telemetry"]["enabled"] is False
        assert stats["telemetry"]["metrics"] == {}
        # correlation IDs still echo even with telemetry off
        response = client.submit(
            "test-obs-echo", {"value": 3}, request_id="still-echoed"
        )
        assert response.ok and response.request_id == "still-echoed"
    finally:
        instance.close()
