"""The metrics registry and Prometheus exposition: typed instruments,
label handling, histogram invariants, the render → parse → validate
round-trip, the disabled (no-op) mode, shared-stats helpers and the
SimMetrics/BatchMetrics registry bridges."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    _NULL_METRIC,
    parse_exposition,
    validate_exposition,
)
from repro.obs.stats import Ewma, percentile, summarize
from repro.sim.metrics import SimMetrics


# -- instruments --------------------------------------------------------------


def test_counter_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "Jobs.")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        counter.labels().dec()  # the counter child has no way down
    with pytest.raises(ValueError):
        counter.labels().set(0)


def test_gauge_up_and_down():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "Depth.")
    gauge.set(5)
    gauge.dec(2)
    gauge.inc()
    assert gauge.value == 4


def test_labels_create_independent_series():
    registry = MetricsRegistry()
    counter = registry.counter("hits_total", "Hits.", ("outcome",))
    counter.labels("ok").inc(2)
    counter.labels("error").inc()
    counter.labels(outcome="ok").inc()  # by-name addressing, same child
    series = {
        s["labels"]["outcome"]: s["value"] for s in counter.snapshot_series()
    }
    assert series == {"ok": 3.0, "error": 1.0}


def test_label_arity_and_name_errors():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "C.", ("a", "b"))
    with pytest.raises(ValueError):
        counter.labels("only-one")
    with pytest.raises(ValueError):
        counter.labels(a="x", wrong="y")
    with pytest.raises(ValueError):
        counter.labels("x", b="y")  # positional + by-name mixed
    with pytest.raises(ValueError):
        registry.counter("c_total", "C.")  # label set mismatch
    with pytest.raises(ValueError):
        registry.gauge("c_total", "C.", ("a", "b"))  # type mismatch
    with pytest.raises(ValueError):
        registry.counter("bad name!", "B.")
    with pytest.raises(ValueError):
        registry.histogram("h", "H.", ("le",))  # reserved label


def test_histogram_bucket_invariants():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "latency_seconds", "L.", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    (series,) = histogram.snapshot_series()
    assert series["count"] == 4
    assert series["sum"] == pytest.approx(55.55)
    # cumulative and capped by +Inf == count
    assert series["buckets"] == {"0.1": 1, "1": 2, "10": 3, "+Inf": 4}


def test_histogram_boundary_values_are_le():
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds", "H.", buckets=(1.0, 2.0))
    histogram.observe(1.0)  # le="1" bucket includes the boundary
    (series,) = histogram.snapshot_series()
    assert series["buckets"]["1"] == 1


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("h1", "H.", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("h2", "H.", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("h3", "H.", buckets=(2.0, 1.0))
    registry.histogram("h4", "H.", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h4", "H.", buckets=(1.0, 3.0))  # mismatch


def test_counter_thread_safety():
    registry = MetricsRegistry()
    counter = registry.counter("racy_total", "R.", ("lane",))

    def hammer(lane):
        for _ in range(2000):
            counter.labels(lane).inc()

    threads = [
        threading.Thread(target=hammer, args=(str(i % 2),)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(s["value"] for s in counter.snapshot_series())
    assert total == 8000


# -- exposition: render → parse → validate ------------------------------------


def test_render_parse_roundtrip_with_gnarly_labels():
    registry = MetricsRegistry()
    gnarly = 'quote " backslash \\ newline \n done'
    registry.counter("odd_total", "Help with \\ and\nnewline.",
                     ("what",)).labels(gnarly).inc(7)
    registry.histogram("lat_seconds", "Latency.", ("task",),
                       buckets=(0.5, 1.5)).labels("sim").observe(0.7)
    registry.gauge("depth", "Depth.").set(3)
    text = registry.render()
    parsed = parse_exposition(text)
    (name, labels, value) = parsed["odd_total"]["samples"][0]
    assert labels == {"what": gnarly} and value == 7.0
    assert parsed["lat_seconds"]["type"] == "histogram"
    assert validate_exposition(text) >= 7


def test_render_formats_integers_and_infinities():
    registry = MetricsRegistry()
    registry.counter("n_total", "N.").inc(2)
    text = registry.render()
    assert "n_total 2\n" in text  # not 2.0
    registry2 = MetricsRegistry()
    registry2.gauge("g", "G.").set(math.inf)
    assert "g +Inf" in registry2.render()


def test_validate_rejects_missing_type():
    with pytest.raises(ValueError, match="TYPE"):
        validate_exposition("orphan_total 3\n")


def test_validate_rejects_negative_counter():
    text = "# TYPE bad_total counter\nbad_total -1\n"
    with pytest.raises(ValueError, match="out of range"):
        validate_exposition(text)


def test_validate_rejects_histogram_without_inf_bucket():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\n'
        "h_sum 0.5\n"
        "h_count 1\n"
    )
    with pytest.raises(ValueError, match=r"\+Inf"):
        validate_exposition(text)


def test_validate_rejects_non_monotone_histogram():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="2"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 1\n"
        "h_count 5\n"
    )
    with pytest.raises(ValueError, match="monotone"):
        validate_exposition(text)


def test_validate_rejects_count_mismatch():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 4\n'
        "h_sum 1\n"
        "h_count 5\n"
    )
    with pytest.raises(ValueError, match="_count"):
        validate_exposition(text)


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_exposition('a_total{x="unterminated 1\n')
    with pytest.raises(ValueError):
        parse_exposition("a_total\n")  # no value
    with pytest.raises(ValueError):
        parse_exposition("a_total nan-ish\n")


# -- disabled mode ------------------------------------------------------------


def test_null_registry_hands_out_shared_noop():
    counter = NULL_REGISTRY.counter("x_total", "X.", ("a",))
    gauge = NULL_REGISTRY.gauge("y", "Y.")
    histogram = NULL_REGISTRY.histogram("z_seconds", "Z.")
    # one shared singleton, no per-call allocation
    assert counter is gauge is histogram is _NULL_METRIC
    assert counter.labels("anything") is counter
    counter.inc()
    gauge.set(9)
    gauge.dec()
    histogram.observe(1.0)
    assert counter.value == 0.0
    assert NULL_REGISTRY.render() == ""
    assert NULL_REGISTRY.snapshot() == {}


# -- shared stats helpers -----------------------------------------------------


def test_percentile_matches_loadgen_convention():
    values = sorted([0.1, 0.2, 0.3, 0.4])
    # nearest-rank with 0.5 rounding over (n - 1): same math the
    # loadgen report has always used
    assert percentile(values, 0.50) == 0.3
    assert percentile(values, 0.99) == 0.4
    assert percentile([], 0.5) == 0.0


def test_summarize_keys():
    summary = summarize([3.0, 1.0, 2.0])
    assert set(summary) == {"p50", "p90", "p99", "max"}
    assert summary["max"] == 3.0


def test_ewma_first_sample_seeds():
    ewma = Ewma(alpha=0.5)
    assert ewma.value == 0.0
    ewma.update(4.0)
    assert ewma.value == 4.0  # first sample seeds, not decays
    ewma.update(8.0)
    assert ewma.value == 6.0
    assert ewma.samples == 2


# -- kernel-counter bridges ---------------------------------------------------


def test_sim_metrics_publish():
    metrics = SimMetrics()
    metrics.activations = 5
    metrics.timesteps = 2
    registry = MetricsRegistry()
    metrics.publish(registry, run="original")
    snapshot = registry.snapshot()
    (series,) = snapshot["repro_sim_activations_total"]["series"]
    assert series == {"labels": {"run": "original"}, "value": 5.0}
    assert validate_exposition(registry.render()) > 0


def test_batch_metrics_publish():
    from repro.sim.batch import BatchMetrics

    metrics = BatchMetrics()
    metrics.lanes = 3
    metrics.totals.activations = 7
    registry = MetricsRegistry()
    metrics.publish(registry)
    snapshot = registry.snapshot()
    assert snapshot["repro_batch_lanes_total"]["series"][0]["value"] == 3.0
    assert snapshot["repro_sim_activations_total"]["series"][0]["value"] == 7.0
