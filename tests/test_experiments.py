"""Tests for the Figure 9 / Figure 10 experiment harnesses — the shape
assertions from DESIGN.md's pass criteria."""

import pytest

from repro.experiments import PAPER_FIGURE9, render_table
from repro.models.plan import BusRole


# fig9/fig10 are session-scoped fixtures in tests/conftest.py — the
# full sweeps are computed once and shared with the rest of the suite


class TestFigure9Shape:
    """The paper's qualitative findings, checked on our measured
    rates."""

    def test_model1_single_bus_carries_everything(self, fig9):
        """Model1's one bus carries the design's whole traffic: its rate
        equals the sum of every other model's buses."""
        for design in fig9.cells:
            m1 = fig9.cell(design, "Model1")
            assert list(m1.rates_mbits) == ["b1"]
            m2_total = sum(fig9.cell(design, "Model2").rates_mbits.values())
            assert m1.rates_mbits["b1"] == pytest.approx(m2_total, rel=1e-6)

    def test_model2_global_bus_equals_model3_dedicated_sum(self, fig9):
        for design in fig9.cells:
            m2 = fig9.cell(design, "Model2")
            m3 = fig9.cell(design, "Model3")
            global_bus = next(
                rate
                for name, rate in m2.rates_mbits.items()
                if m2.report.plan.buses[name].role is BusRole.GLOBAL
            )
            dedicated = sum(
                rate
                for name, rate in m3.rates_mbits.items()
                if m3.report.plan.buses[name].role is BusRole.DEDICATED
            )
            assert global_bus == pytest.approx(dedicated, rel=1e-6)

    def test_model4_interface_triple_is_equal(self, fig9):
        """The paper's b2=b3=b4: each interface-path bus carries exactly
        the cross-partition traffic."""
        for design in fig9.cells:
            m4 = fig9.cell(design, "Model4")
            triple = [
                rate
                for name, rate in m4.rates_mbits.items()
                if m4.report.plan.buses[name].role
                in (BusRole.IFACE, BusRole.INTERCHANGE)
            ]
            assert len(triple) == 3
            assert max(triple) == pytest.approx(min(triple), rel=1e-6)

    def test_design1_model3_and_model4_beat_model1_and_model2(self, fig9):
        """Paper: 'For Design1, Model3 and Model4 are preferable than
        Model1 and Model2 because communication is more or less evenly
        distributed ... the maximum bus transfer rate required is
        lower.'"""
        maxes = {m: fig9.cell("Design1", m).max_mbits for m in
                 ("Model1", "Model2", "Model3", "Model4")}
        assert maxes["Model3"] < maxes["Model2"] < maxes["Model1"]
        assert maxes["Model4"] < maxes["Model2"]
        assert maxes["Model4"] < maxes["Model1"]

    def test_design2_models_beat_model1(self, fig9):
        """Paper: 'For Design2, Model2, Model3 and Model4 are ...
        preferable to Model1 since the maximum bus transfer rate is
        less than half that of Model1' (Model4 lands near half here —
        our processor side carries less of the traffic than theirs)."""
        maxes = {m: fig9.cell("Design2", m).max_mbits for m in
                 ("Model1", "Model2", "Model3", "Model4")}
        assert maxes["Model2"] < 0.5 * maxes["Model1"]
        assert maxes["Model3"] < 0.5 * maxes["Model1"]
        assert maxes["Model4"] < 0.8 * maxes["Model1"]

    def test_design3_model3_is_best(self, fig9):
        """Paper: 'For Design3, Model3 is the best and Model4 is better
        than Model1 and Model2 which have hot spots in the design.'"""
        maxes = {m: fig9.cell("Design3", m).max_mbits for m in
                 ("Model1", "Model2", "Model3", "Model4")}
        assert maxes["Model3"] == min(maxes.values())
        assert maxes["Model4"] < maxes["Model2"]
        assert maxes["Model4"] < maxes["Model1"]

    def test_design3_global_bus_is_a_hot_spot(self, fig9):
        """Model2's global bus dominates when globals dominate."""
        m2 = fig9.cell("Design3", "Model2")
        plan = m2.report.plan
        global_rate = next(
            rate for name, rate in m2.rates_mbits.items()
            if plan.buses[name].role is BusRole.GLOBAL
        )
        local_rates = [
            rate for name, rate in m2.rates_mbits.items()
            if plan.buses[name].role is BusRole.LOCAL
        ]
        assert global_rate > 4 * max(local_rates)

    def test_paper_design3_model2_locals_are_tiny_like_ours(self, fig9):
        """Sanity of the comparison data itself: the paper's Design3
        local buses (42, 18) are tiny next to its global bus (3576), and
        so are ours."""
        paper = PAPER_FIGURE9["Design3"]["Model2"]
        assert max(paper[0], paper[2]) < 0.05 * paper[1]

    def test_rates_positive_everywhere(self, fig9):
        for design, row in fig9.cells.items():
            for model, cell in row.items():
                for bus, rate in cell.rates_mbits.items():
                    assert rate >= 0
                assert cell.max_mbits > 0

    def test_render_mentions_all_models(self, fig9):
        text = fig9.render()
        for token in ("Model1", "Model4", "Design3", "paper"):
            assert token in text


class TestFigure10Shape:
    def test_every_cell_much_larger_than_original(self, fig10):
        """The refined implementation model is several times the
        functional model — the mechanisation argument behind the
        paper's '10x productivity' claim."""
        assert fig10.min_ratio() > 3.0

    def test_model4_is_the_largest_model(self, fig10):
        for design, row in fig10.cells.items():
            sizes = {m: c.refined_lines for m, c in row.items()}
            assert sizes["Model4"] == max(sizes.values())

    def test_design3_model4_is_the_extreme_cell(self, fig10):
        """The paper's biggest refined spec is Design3/Model4 (4324
        lines): global-heavy message passing generates the most
        machinery."""
        largest = max(
            (cell.refined_lines, design, model)
            for design, row in fig10.cells.items()
            for model, cell in row.items()
        )
        assert (largest[1], largest[2]) == ("Design3", "Model4")

    def test_model1_size_roughly_design_independent(self, fig10):
        """Paper: Model1 is 3057 lines in all three designs (everything
        is global memory regardless of the partition)."""
        sizes = [row["Model1"].refined_lines for row in fig10.cells.values()]
        assert max(sizes) - min(sizes) < 0.1 * max(sizes)

    def test_refinement_is_fast_and_model_independent(self, fig10):
        times = [
            cell.refinement_seconds
            for row in fig10.cells.values()
            for cell in row.values()
        ]
        assert max(times) < 5.0  # seconds; paper took ~35s on a SPARC5
        assert max(times) < 20 * min(times)

    def test_render(self, fig10):
        text = fig10.render()
        assert "Figure 10" in text
        assert "paper" in text


class TestTableRenderer:
    def test_alignment(self):
        table = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = table.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        table = render_table(["x"], [["1"]], title="T")
        assert table.splitlines()[0] == "T"


class TestWorkloadFigure9:
    """Every registry workload, not just medical, must drive a full
    Figure 9 grid (the ``workload``/``workload_fig9`` fixtures run this
    class once per entry)."""

    def test_grid_covers_design_catalog(self, workload, workload_fig9):
        spec = workload.spec()
        assert set(workload_fig9.cells) == set(workload.designs(spec))
        for row in workload_fig9.cells.values():
            assert set(row) == {"Model1", "Model2", "Model3", "Model4"}

    def test_rates_are_nonnegative(self, workload_fig9):
        for row in workload_fig9.cells.values():
            for cell in row.values():
                assert all(rate >= 0.0 for rate in cell.rates_mbits.values())

    def test_model1_funnels_into_one_bus(self, workload_fig9):
        """Model1 keeps every variable in global memory, so exactly one
        bus carries traffic — for any workload, not just the paper's."""
        for row in workload_fig9.cells.values():
            assert len(row["Model1"].rates_mbits) == 1

    def test_render_lists_every_design(self, workload, workload_fig9):
        text = workload_fig9.render()
        for design in workload.designs(workload.spec()):
            assert design in text


class TestWorkloadFigure10:
    def test_refinement_always_grows_the_spec(self, workload_fig10):
        """Model refinement adds protocol machinery; no workload's
        refined spec may come out smaller than its source."""
        assert workload_fig10.min_ratio() >= 1.0

    def test_original_lines_positive(self, workload_fig10):
        assert workload_fig10.original_lines > 0

    def test_every_cell_measured(self, workload_fig10):
        for row in workload_fig10.cells.values():
            for cell in row.values():
                assert cell.refined_lines > 0
                assert cell.refinement_seconds >= 0.0
