"""VCD waveform export: writer → parser round-trips, kernel integration.

The acceptance criterion: a ``repro simulate --vcd`` dump round-trips
through the in-repo parser with the signal edges matching the change
stream the kernel reported.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.errors import ReproError
from repro.models import resolve_model
from repro.obs.vcd import VCDWriter, parse_vcd
from repro.refine import Refiner
from repro.sim import Simulator
from repro.sim.metrics import SimMetrics


def simulate_refined(design="Design1", model="Model1"):
    spec = medical_specification()
    spec.validate()
    refined = Refiner(
        spec, all_designs(spec)[design], resolve_model(model)
    ).run()
    writer = VCDWriter()
    metrics = SimMetrics()
    run = Simulator(refined.spec).run(
        inputs=dict(MEDICAL_INPUTS), observer=writer, metrics=metrics
    )
    assert run.completed
    return writer, metrics


class TestWriterParserRoundTrip:
    def test_synthetic_round_trip(self):
        writer = VCDWriter()
        writer.on_register("clk", 0)
        writer.on_register("count", 0)
        writer.on_register("temp", -3)
        writer.on_register("state", "idle")
        writer.on_change(1e-9, "clk", 1)
        writer.on_change(1e-9, "count", 5)
        writer.on_change(2e-9, "clk", 0)
        writer.on_change(2e-9, "temp", -7)
        writer.on_change(3e-9, "state", "busy word")
        data = parse_vcd(writer.dump())
        assert set(data.signals) == {"clk", "count", "temp", "state"}
        assert data.changes_of("clk") == [(1, 1), (2, 0)]
        assert data.changes_of("count") == [(1, 5)]
        # negative values survive the two's-complement integer encoding
        assert data.signals["temp"].initial == -3
        assert data.changes_of("temp") == [(2, -7)]
        # strings survive with spaces collapsed
        assert data.changes_of("state") == [(3, "busy_word")]
        assert data.signals["clk"].width == 1
        assert data.signals["count"].var_type == "wire"
        assert data.signals["temp"].var_type == "integer"

    def test_kernel_stream_round_trips(self):
        writer, metrics = simulate_refined()
        assert writer.changes, "refined simulation produced no signal edges"
        # the observer saw exactly the changes the kernel applied
        assert len(writer.changes) == metrics.signal_changes
        data = parse_vcd(writer.dump())
        assert set(data.signals) == set(writer._initial)
        # per-signal edge sequences match the observed stream exactly
        expected = {}
        for tick, name, value in writer.changes:
            expected.setdefault(name, []).append((tick, int(value)))
        for name, edges in expected.items():
            assert data.changes_of(name) == edges, name
        for name in data.signals:
            if name not in expected:
                assert data.changes_of(name) == []

    @pytest.mark.parametrize("model", ["Model2", "Model4"])
    def test_other_models_round_trip(self, model):
        writer, _ = simulate_refined(model=model)
        data = parse_vcd(writer.dump())
        total = sum(len(s.changes) for s in data.signals.values())
        assert total == len(writer.changes)


class TestParserEdges:
    def test_rejects_unknown_timescale(self):
        with pytest.raises(ReproError):
            VCDWriter(timescale="1minute")

    def test_rejects_undeclared_code(self):
        text = "$enddefinitions $end\n#0\n1!\n"
        with pytest.raises(ReproError):
            parse_vcd(text)

    def test_changes_of_unknown_signal(self):
        data = parse_vcd("$enddefinitions $end\n")
        with pytest.raises(ReproError):
            data.changes_of("ghost")

    def test_handwritten_vector_dump(self):
        text = "\n".join([
            "$timescale 1ns $end",
            "$scope module m $end",
            "$var wire 4 ! bus $end",
            "$upscope $end",
            "$enddefinitions $end",
            "$dumpvars",
            "b0 !",
            "$end",
            "#5",
            "b1010 !",
            "#9",
            "bx01 !",
        ])
        data = parse_vcd(text)
        assert data.timescale == "1ns"
        assert data.signals["bus"].initial == 0
        assert data.changes_of("bus") == [(5, 10), (9, 1)]
