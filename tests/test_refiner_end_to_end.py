"""End-to-end refiner tests: full pipeline over the paper's figures,
every implementation model, equivalence and structural invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import refine_specification
from repro.apps.figures import (
    figure1_partition,
    figure1_specification,
    figure2_partition,
    figure2_specification,
)
from repro.errors import RefinementError
from repro.models import ALL_MODELS, MODEL1, MODEL2, MODEL4, resolve_model
from repro.partition import Partition
from repro.refine import ControlScheme, Refiner
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module", params=[m.name for m in ALL_MODELS])
def fig2_design(request):
    spec = figure2_specification()
    spec.validate()
    partition = figure2_partition(spec)
    return Refiner(spec, partition, resolve_model(request.param)).run()


class TestStructuralInvariants:
    def test_refined_spec_validates(self, fig2_design):
        fig2_design.spec.validate()

    def test_bus_count_within_model_maximum(self, fig2_design):
        p = fig2_design.partition.p
        assert fig2_design.netlist.bus_count <= fig2_design.model.max_buses(p)

    def test_memory_counts_match_paper(self, fig2_design):
        """Paper §5: Model1/Model4 need two memories, Model2/Model3
        four."""
        expected = {"Model1": 2, "Model2": 4, "Model3": 4, "Model4": 2}
        assert (
            fig2_design.netlist.memory_count
            == expected[fig2_design.model.name]
        )

    def test_every_placed_variable_has_a_holder(self, fig2_design):
        for variable, holder in fig2_design.observation_map.items():
            behavior = fig2_design.spec.find_behavior(holder)
            assert any(d.name == variable for d in behavior.decls)

    def test_placed_variables_removed_from_globals(self, fig2_design):
        for variable in fig2_design.observation_map:
            assert fig2_design.spec.global_variable(variable) is None

    def test_refined_is_larger(self, fig2_design):
        sizes = fig2_design.line_counts()
        assert sizes["refined"] > 3 * sizes["original"]

    def test_system_top_is_concurrent(self, fig2_design):
        assert fig2_design.spec.top.is_concurrent

    def test_refinement_time_recorded(self, fig2_design):
        assert 0 < fig2_design.refinement_seconds < 10


class TestEquivalenceAcrossModels:
    @pytest.mark.parametrize("stimulus", [1, 7, -4, 0])
    def test_figure2_equivalent(self, fig2_design, stimulus):
        report = check_equivalence(fig2_design, inputs={"stimulus": stimulus})
        report.raise_if_mismatched()

    def test_original_untouched_by_refinement(self, fig2_design):
        """Refinement must not mutate its input specification."""
        fresh = figure2_specification()
        assert (
            fig2_design.original.line_count() == fresh.line_count()
        )
        assert fig2_design.original.stats().as_dict() == fresh.stats().as_dict()


class TestFigure1AllModels:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", [3, -5, 0])
    def test_equivalent(self, model, seed):
        spec = figure1_specification()
        partition = figure1_partition(spec)
        design = Refiner(spec, partition, model).run()
        check_equivalence(design, inputs={"seed": seed}).raise_if_mismatched()


class TestControlSchemeAblation:
    @pytest.mark.parametrize("scheme", [ControlScheme.AUTO, ControlScheme.WRAP])
    def test_both_schemes_equivalent(self, scheme):
        spec = figure1_specification()
        partition = figure1_partition(spec)
        design = Refiner(
            spec, partition, MODEL1, control_scheme=scheme
        ).run()
        check_equivalence(design, inputs={"seed": 3}).raise_if_mismatched()

    def test_wrap_scheme_is_larger(self):
        spec = figure1_specification()
        partition = figure1_partition(spec)
        auto = Refiner(spec, partition, MODEL1).run()
        wrap = Refiner(
            spec, partition, MODEL1, control_scheme=ControlScheme.WRAP
        ).run()
        assert (
            wrap.line_counts()["refined"] > auto.line_counts()["refined"]
        )


class TestProtocolAblation:
    @pytest.mark.parametrize("protocol", ["handshake", "strobe"])
    def test_both_protocols_equivalent(self, protocol):
        spec = figure2_specification()
        partition = figure2_partition(spec)
        design = Refiner(spec, partition, MODEL2, protocol=protocol).run()
        check_equivalence(design, inputs={"stimulus": 2}).raise_if_mismatched()

    def test_unknown_protocol_rejected(self):
        spec = figure1_specification()
        partition = figure1_partition(spec)
        with pytest.raises(RefinementError):
            Refiner(spec, partition, MODEL1, protocol="smoke-signals")

    def test_strobe_advances_time(self):
        """The strobe protocol burns wall-clock hold times; the
        handshake completes in delta cycles."""
        spec = figure1_specification()
        partition = figure1_partition(spec)
        from repro.sim import Simulator

        strobe = Refiner(spec, partition, MODEL1, protocol="strobe").run()
        handshake = Refiner(spec, partition, MODEL1).run()
        t_strobe = Simulator(strobe.spec).run(inputs={"seed": 3}).time
        t_handshake = Simulator(handshake.spec).run(inputs={"seed": 3}).time
        assert t_strobe > t_handshake


class TestConvenienceApi:
    def test_refine_specification_wrapper(self):
        spec = figure1_specification()
        design = refine_specification(
            spec,
            partition={"A": "PROC", "C": "PROC", "B": "ASIC1", "x": "ASIC1"},
            model="Model1",
        )
        assert design.model.name == "Model1"
        check_equivalence(design).raise_if_mismatched()


class TestNameCollisionGuard:
    def test_bus_signal_collision_rejected(self):
        from repro.spec.builder import assign, leaf, spec
        from repro.spec.expr import var
        from repro.spec.types import int_type
        from repro.spec.variable import variable

        bad = spec(
            "Bad",
            leaf("A", assign("b1_start", 1), assign("x", 1)),
            variables=[
                variable("b1_start", int_type()),  # collides with bus bundle
                variable("x", int_type()),
            ],
        )
        partition = Partition.from_mapping(
            bad, {"A": "P1", "x": "P1", "b1_start": "P1"}
        )
        with pytest.raises(RefinementError, match="b1_start"):
            Refiner(bad, partition, MODEL1).run()


@st.composite
def random_seeds(draw):
    return draw(st.integers(min_value=-100, max_value=100))


class TestPropertyEquivalence:
    @given(random_seeds())
    @settings(max_examples=15, deadline=None)
    def test_figure1_model4_equivalent_for_any_seed(self, seed):
        """Property: for any input seed, the Model4 refinement observes
        the same outputs as the functional model."""
        spec = figure1_specification()
        partition = figure1_partition(spec)
        design = Refiner(spec, partition, MODEL4).run()
        check_equivalence(design, inputs={"seed": seed}).raise_if_mismatched()


class TestSubprogramAccessGuard:
    def test_subprogram_touching_partitioned_variable_rejected(self):
        from repro.spec.builder import assign, call, leaf, spec
        from repro.spec.expr import var
        from repro.spec.subprogram import Param, Subprogram
        from repro.spec.types import int_type
        from repro.spec.variable import variable

        bump = Subprogram(
            "bump",
            params=[Param("amount", int_type())],
            stmt_body=[assign("x", var("x") + var("amount"))],
        )
        design = spec(
            "SubAccess",
            leaf("A", call("bump", 2)),
            variables=[variable("x", int_type(), init=0)],
            subprograms=[bump],
        )
        design.validate()
        partition = Partition.from_mapping(design, {"A": "P1", "x": "P2"})
        with pytest.raises(RefinementError, match="bump"):
            Refiner(design, partition, MODEL1).run()


class TestProtocolCapabilities:
    def test_strobe_rejected_for_model4(self):
        """A fixed-response-window protocol cannot serve the bus
        interfaces' store-and-forward path; the refiner must say so
        instead of producing a design that samples stale data."""
        from repro.apps.figures import figure8_specification

        spec = figure8_specification()
        spec.validate()
        partition = Partition.from_mapping(
            spec, {"B1": "C1", "B2": "C2", "y": "C2"}
        )
        with pytest.raises(RefinementError, match="multi|window|handshake"):
            Refiner(spec, partition, MODEL4, protocol="strobe").run()

    def test_strobe_fine_for_model4_without_cross_traffic(self):
        """No interchange bus is planned when nothing crosses, so the
        strobe remains usable."""
        from repro.spec.builder import assign, leaf, seq, spec as make_spec
        from repro.spec.builder import transition as arc
        from repro.spec.expr import var
        from repro.spec.types import int_type
        from repro.spec.variable import variable

        a = leaf("A", assign("p", var("p") + 1))
        b = leaf("B", assign("q", var("q") + 1))
        top = seq("T", [a, b], transitions=[arc("A", None, "B")])
        design = make_spec(
            "Iso",
            top,
            variables=[
                variable("p", int_type(), init=0),
                variable("q", int_type(), init=0),
            ],
        )
        design.validate()
        partition = Partition.from_mapping(
            design, {"A": "P1", "B": "P2", "p": "P1", "q": "P2"}
        )
        design_out = Refiner(design, partition, MODEL4,
                             protocol="strobe").run()
        check_equivalence(design_out).raise_if_mismatched()
