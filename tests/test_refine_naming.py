"""Spec-wide name allocation: no composed refinement emits duplicates.

The regression the ISSUE names: generated names used to be uniquified
per-pass, so two passes could independently emit the same identifier.
All fresh-name generation now routes through one spec-wide
:class:`repro.refine.naming.NameAllocator`; these tests pin the
allocator semantics and assert the global no-duplicate invariant over
composed control+data+memory+arbiter refinement — including an
adversarial specification whose *user* names squat on the generator's
conventional names.
"""

from collections import Counter

import pytest

from repro.apps.medical import all_designs, medical_specification
from repro.models import ALL_MODELS
from repro.partition import Partition
from repro.refine import Refiner
from repro.refine.naming import NameAllocator, NamePool
from repro.sim.equivalence import check_equivalence
from repro.spec.builder import assign, leaf, on_complete, seq, spec, transition
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import Role, variable


def scope_problems(s):
    """Name-collision violations of one specification.

    The refined language has one global namespace for behaviors,
    spec-level variables/signals and subprograms; behavior-local decls
    and subprogram params/decls are scoped but must neither repeat
    within their scope nor shadow a global name.
    """
    glob = Counter()
    for behavior in s.behaviors():
        glob[behavior.name] += 1
    for v in s.variables:
        glob[v.name] += 1
    for name in s.subprograms:
        glob[name] += 1
    problems = {name: count for name, count in glob.items() if count > 1}
    for behavior in s.behaviors():
        local = Counter(d.name for d in behavior.decls)
        for name, count in local.items():
            if count > 1 or name in glob:
                problems[f"{behavior.name}.{name}"] = count
    for sub in s.subprograms.values():
        local = Counter(
            [p.name for p in sub.params] + [d.name for d in sub.decls]
        )
        for name, count in local.items():
            if count > 1 or name in glob:
                problems[f"{sub.name}({name})"] = count
    return problems


class TestNameAllocator:
    def test_fresh_uniquifies(self):
        pool = NameAllocator(["tmp"])
        assert pool.fresh("tmp") == "tmp_2"
        assert pool.fresh("tmp") == "tmp_3"
        assert pool.fresh("other") == "other"
        assert pool.is_taken("tmp_2")

    def test_fixed_is_memoized(self):
        pool = NameAllocator(["MST_send_b1_A"])
        first = pool.fixed("MST_send_b1_A")
        assert first == "MST_send_b1_A_2"  # user name never shadowed
        # independent callers deriving the same conventional name agree
        assert pool.fixed("MST_send_b1_A") == first
        assert pool.fixed("free") == "free"
        assert pool.fixed("free") == "free"

    def test_fresh_after_fixed_stays_unique(self):
        pool = NameAllocator()
        fixed = pool.fixed("req")
        assert pool.fresh("req") != fixed

    def test_reserve(self):
        pool = NameAllocator()
        pool.reserve("held")
        assert pool.is_taken("held")
        assert pool.fresh("held") == "held_2"

    def test_namepool_alias(self):
        assert NamePool is NameAllocator

    def test_for_specification_seeds_every_scope(self):
        source = medical_specification()
        source.validate()
        pool = NameAllocator.for_specification(source)
        # behavior, spec variable and subprogram names are all taken
        assert pool.fresh("Acquire") == "Acquire_2"
        assert pool.fresh("display_out") == "display_out_2"


@pytest.fixture(scope="module")
def medical():
    source = medical_specification()
    source.validate()
    return source


class TestComposedRefinementNeverCollides:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("design", ["Design1", "Design2", "Design3"])
    def test_medical_cells(self, medical, design, model):
        refined = Refiner(
            medical, all_designs(medical)[design], model
        ).run()
        assert scope_problems(refined.spec) == {}


@pytest.fixture(scope="module")
def adversarial_design():
    """User names squat on the conventional generated names:
    ``MST_send_b1_A`` (master-wrapper subprogram) and ``b1_req_A``
    (arbitration signal) are ordinary user variables here, and both are
    live across the cut so data refinement must traffic them too."""
    a = leaf(
        "A",
        assign("x", var("inp") + 2),
        assign("MST_send_b1_A", var("x")),
    )
    b = leaf("B", assign("y", var("x") * 3))
    c = leaf(
        "C",
        assign("out", var("y") + var("MST_send_b1_A") + var("b1_req_A")),
    )
    top = seq(
        "Main",
        [a, b, c],
        transitions=[
            transition("A", None, "B"),
            transition("B", None, "C"),
            on_complete("C"),
        ],
    )
    design = spec(
        "Adversarial",
        top,
        variables=[
            variable("inp", int_type(), init=3, role=Role.INPUT),
            variable("out", int_type(), init=0, role=Role.OUTPUT),
            variable("x", int_type(), init=0),
            variable("y", int_type(), init=0),
            variable("MST_send_b1_A", int_type(), init=0),
            variable("b1_req_A", int_type(), init=7),
        ],
    )
    design.validate()
    partition = Partition.from_mapping(
        design,
        {
            "A": "P1",
            "B": "P2",
            "C": "P1",
            "x": "P1",
            "y": "P2",
            "MST_send_b1_A": "P1",
            "b1_req_A": "P1",
        },
        name="adversarial",
    )
    return design, partition


class TestAdversarialUserNames:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_no_duplicates_and_still_equivalent(
        self, adversarial_design, model
    ):
        design, partition = adversarial_design
        refined = Refiner(design, partition, model).run()
        assert scope_problems(refined.spec) == {}
        # the user's variables survive under their own names (possibly
        # localized into a memory behavior) ...
        everywhere = {v.name for v in refined.spec.variables}
        for behavior in refined.spec.behaviors():
            everywhere.update(d.name for d in behavior.decls)
        assert {"MST_send_b1_A", "b1_req_A"} <= everywhere
        # ... the generator's conventional names stepped aside instead
        # of shadowing them ...
        generated = set(refined.spec.subprograms) | {
            v.name for v in refined.spec.variables
        }
        assert "MST_send_b1_A" not in refined.spec.subprograms
        assert any(name.startswith("MST_send_b1_A_") for name in generated)
        # ... and the refinement still computes the same outputs
        report = check_equivalence(refined, inputs={"inp": 5})
        report.raise_if_mismatched()
