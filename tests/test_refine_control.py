"""Tests for control-related refinement (paper §4.1, Figure 4)."""

import pytest

from repro.apps.figures import (
    figure4_nonleaf_specification,
    figure4_specification,
)
from repro.partition import Partition
from repro.refine import ControlScheme, NamePool, control_refine
from repro.spec.behavior import CompositeBehavior, LeafBehavior
from repro.spec.stmt import SignalAssign, Wait, While
from repro.spec.variable import StorageClass


def refine_figure4(scheme=ControlScheme.AUTO, nonleaf=False):
    spec = (
        figure4_nonleaf_specification() if nonleaf else figure4_specification()
    )
    spec.validate()
    partition = Partition.from_mapping(
        spec, {"A": "P1", "B": "P2", "C": "P1", "acc": "P1"}
    )
    refined = spec.copy()
    pool = NamePool.for_specification(refined)
    result = control_refine(refined, partition, pool, scheme=scheme)
    return spec, refined, result


class TestLeafScheme:
    def test_moved_record(self):
        _, _, result = refine_figure4()
        assert len(result.moved) == 1
        moved = result.moved[0]
        assert moved.original == "B"
        assert moved.ctrl == "B_CTRL"
        assert moved.wrapper == "B_NEW"
        assert moved.component == "P2"
        assert moved.scheme == "leaf"

    def test_ctrl_replaces_b_in_sequence(self):
        _, refined, _ = refine_figure4()
        top = refined.top
        assert top.has_child("B_CTRL")
        assert not top.has_child("B")
        # arcs now route through B_CTRL: A -> B_CTRL -> C
        assert top.transitions_from("A")[0].target == "B_CTRL"
        assert top.transitions_from("B_CTRL")[0].target == "C"

    def test_ctrl_body_is_four_phase_handshake(self):
        _, refined, _ = refine_figure4()
        ctrl = refined.find_behavior("B_CTRL")
        kinds = [type(s) for s in ctrl.stmt_body]
        assert kinds == [SignalAssign, Wait, SignalAssign, Wait]

    def test_signals_declared_globally(self):
        _, refined, result = refine_figure4()
        names = {v.name for v in refined.variables if v.kind is StorageClass.SIGNAL}
        assert {"B_start", "B_done"} <= names
        assert {s.name for s in result.signals} == {"B_start", "B_done"}

    def test_wrapper_is_daemon_loop(self):
        _, _, result = refine_figure4()
        wrapper = result.daemons[0]
        assert isinstance(wrapper, LeafBehavior)
        assert wrapper.daemon
        assert isinstance(wrapper.stmt_body[0], While)  # endless server loop

    def test_wrapper_contains_original_statements(self):
        spec, _, result = refine_figure4()
        wrapper = result.daemons[0]
        loop_body = wrapper.stmt_body[0].loop_body
        original_stmts = spec.find_behavior("B").stmt_body
        assert original_stmts[0] in loop_body

    def test_leaf_component_map(self):
        _, _, result = refine_figure4()
        assert result.leaf_component["A"] == "P1"
        assert result.leaf_component["C"] == "P1"
        assert result.leaf_component["B_CTRL"] == "P1"
        assert result.leaf_component["B_NEW"] == "P2"


class TestWrapScheme:
    def test_forced_wrap_for_leaf(self):
        _, _, result = refine_figure4(scheme=ControlScheme.WRAP)
        moved = result.moved[0]
        assert moved.scheme == "wrap"
        wrapper = result.daemons[0]
        assert isinstance(wrapper, CompositeBehavior)

    def test_wrap_structure(self):
        _, _, result = refine_figure4(scheme=ControlScheme.WRAP)
        wrapper = result.daemons[0]
        names = [c.name for c in wrapper.subs]
        assert names == ["B_wait_start", "B", "B_set_done"]
        # the loop arc: set_done -> wait_start
        arcs = {(t.source, t.target) for t in wrapper.transitions}
        assert ("B_set_done", "B_wait_start") in arcs

    def test_composite_child_always_wraps(self):
        _, _, result = refine_figure4(nonleaf=True)
        moved = result.moved[0]
        assert moved.scheme == "wrap"
        wrapper = result.daemons[0]
        assert isinstance(wrapper, CompositeBehavior)
        # original composite B kept whole inside
        inner = wrapper.child("B")
        assert isinstance(inner, CompositeBehavior)
        assert [c.name for c in inner.subs] == ["B1", "B2"]

    def test_nonleaf_inner_leaves_recorded(self):
        _, _, result = refine_figure4(nonleaf=True)
        assert result.leaf_component["B1"] == "P2"
        assert result.leaf_component["B2"] == "P2"


class TestNoMovement:
    def test_single_component_partition_moves_nothing(self):
        spec = figure4_specification()
        partition = Partition.from_mapping(spec, {"P": "SW", "acc": "SW"})
        refined = spec.copy()
        result = control_refine(
            refined, partition, NamePool.for_specification(refined)
        )
        assert result.moved == []
        assert result.daemons == []
        assert refined.top.has_child("B")
        assert result.leaf_component["B"] == "SW"

    def test_refined_spec_still_validates(self):
        _, refined, _ = refine_figure4()
        refined.validate()


class TestNameCollisions:
    def test_fresh_names_when_taken(self):
        spec = figure4_specification()
        # pre-declare a behavior named B_CTRL to force suffixing
        from repro.spec.builder import leaf as make_leaf, skip

        spec.top.add_child(make_leaf("B_CTRL", skip()))
        spec.link()
        partition = Partition.from_mapping(
            spec, {"A": "P1", "B": "P2", "C": "P1", "B_CTRL": "P1", "acc": "P1"}
        )
        refined = spec.copy()
        result = control_refine(
            refined, partition, NamePool.for_specification(refined)
        )
        assert result.moved[0].ctrl == "B_CTRL_2"
        refined.validate()
