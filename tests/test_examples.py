"""Every example script must run cleanly — the examples double as
integration tests of the public API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "MISMATCH" not in result.stdout


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "medical_design_space",
        "custom_protocol_refinement",
        "partitioning_playground",
    } <= names
