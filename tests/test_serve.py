"""The serving layer under normal operation: the circuit breaker's
state machine, the HTTP surface (health, readiness, stats, submit,
lookup), deadline propagation, response byte-identity against the
engine, the retrying client, and loadgen's deterministic report."""

import json
import threading

import pytest

from repro.exec import ExecutionEngine, Job, SerialExecutor, code_version_salt, register
from repro.serve import (
    CircuitBreaker,
    LoadgenConfig,
    ReproClient,
    ReproServer,
    Response,
    ServeConfig,
    build_job_pool,
)
from repro.serve.chaos import register_chaos_tasks


@register("test-serve-echo")
def _echo(params):
    return {"value": params["value"]}


@register("test-serve-boom")
def _boom(params):
    raise ValueError(f"boom {params['value']}")


@pytest.fixture
def server(tmp_path):
    """An in-process daemon on an ephemeral port, chaos tasks on,
    cache under the test's tmp dir; closed at teardown."""
    instance = ReproServer(
        ServeConfig(
            port=0,
            workers=2,
            queue_limit=4,
            cache_dir=str(tmp_path / "cache"),
            chaos=True,
            breaker_cooldown=0.2,
        )
    ).start()
    try:
        yield instance
    finally:
        instance.close()


def _client(server, **kw):
    kw.setdefault("retries", 0)
    return ReproClient(port=server.port, **kw)


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=lambda: 0.0)
        for _ in range(2):
            assert breaker.admit("k").allowed
            breaker.record("k", ok=False)
        assert breaker.state("k") == "closed"
        breaker.record("k", ok=False)
        assert breaker.state("k") == "open"
        decision = breaker.admit("k")
        assert not decision.allowed
        assert decision.retry_after == pytest.approx(10.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        breaker.record("k", ok=False)
        breaker.record("k", ok=True)
        breaker.record("k", ok=False)
        assert breaker.state("k") == "closed"

    def test_half_open_single_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: now[0])
        breaker.record("k", ok=False)
        assert not breaker.admit("k").allowed
        now[0] = 5.1
        probe = breaker.admit("k")
        assert probe.allowed and probe.state == "half-open"
        # while the probe is outstanding nobody else gets in
        assert not breaker.admit("k").allowed
        breaker.record("k", ok=True)
        assert breaker.state("k") == "closed"
        assert breaker.admit("k").allowed

    def test_failed_probe_reopens_for_fresh_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: now[0])
        breaker.record("k", ok=False)
        now[0] = 6.0
        assert breaker.admit("k").allowed
        breaker.record("k", ok=False)
        assert breaker.state("k") == "open"
        now[0] = 10.0  # only 4s into the new cooldown
        assert not breaker.admit("k").allowed
        assert breaker.snapshot()["trips"] == 2

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record("bad", ok=False)
        assert not breaker.admit("bad").allowed
        assert breaker.admit("good").allowed
        assert breaker.snapshot()["open"] == ["bad"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


# -- HTTP surface -------------------------------------------------------------


class TestEndpoints:
    def test_health_and_readiness(self, server):
        client = _client(server)
        assert client.healthy()
        assert client.ready()
        server.begin_drain("test")
        assert client.healthy()  # alive while draining
        assert not client.ready()  # but no longer ready

    def test_submit_roundtrip(self, server):
        response = _client(server).submit("test-serve-echo", {"value": 7})
        assert response.ok
        assert response.body["payload"] == {"value": 7}
        assert len(response.body["key"]) == 64
        assert not response.cached

    def test_task_error_is_500_with_taxonomy(self, server):
        response = _client(server).submit("test-serve-boom", {"value": 1})
        assert response.status == 500
        assert response.error_kind() == "error"
        assert "boom 1" in response.body["error"]["message"]

    def test_unknown_task_and_bad_bodies(self, server):
        client = _client(server)
        assert client.submit("no-such-task", {}).error_kind() == "unknown-task"
        assert client.request("POST", "/v1/jobs", {"task": 3}).status == 400
        assert client.request("POST", "/v1/jobs", [1, 2]).status == 400
        bad_deadline = client.request(
            "POST", "/v1/jobs",
            {"task": "test-serve-echo", "params": {}, "deadline": -1},
        )
        assert bad_deadline.error_kind() == "bad-request"

    def test_unknown_route_404(self, server):
        assert _client(server).request("GET", "/nope").status == 404

    def test_tasks_endpoint_lists_registry(self, server):
        names = _client(server).tasks()
        assert "test-serve-echo" in names
        assert "chaos-sleep" in names

    def test_stats_shape(self, server):
        client = _client(server)
        client.submit("test-serve-echo", {"value": 1})
        stats = client.stats()
        assert stats["server"]["ok"] == 1
        assert stats["server"]["ready"] is True
        assert stats["server"]["workers"] == 2
        assert stats["exec"]["jobs"] >= 1
        assert stats["cache"]["puts"] == 1
        assert stats["breaker"]["open"] == []

    def test_lookup_hits_cache(self, server):
        client = _client(server)
        submitted = client.submit("test-serve-echo", {"value": 9})
        found = client.lookup(submitted.body["key"])
        assert found.ok and found.cached
        assert found.body == submitted.body
        assert client.lookup("0" * 64).status == 404

    def test_trace_404_when_disabled(self, server):
        assert _client(server).request("GET", "/v1/trace").status == 404


class TestTraceEndpoint:
    def test_trace_collects_slot_spans(self):
        server = ReproServer(
            ServeConfig(port=0, workers=1, no_cache=True, trace=True)
        ).start()
        try:
            client = _client(server)
            client.submit("test-serve-echo", {"value": 1})
            trace = client.request("GET", "/v1/trace").body
            names = {e.get("name") for e in trace["traceEvents"]}
            assert "engine.run" in names or len(trace["traceEvents"]) > 1
        finally:
            server.close()


# -- determinism / byte identity ----------------------------------------------


class TestByteIdentity:
    def test_warm_hit_body_is_byte_identical(self, server):
        client = _client(server)
        cold = client.submit("test-serve-echo", {"value": 3})
        warm = client.submit("test-serve-echo", {"value": 3})
        assert not cold.cached and warm.cached
        assert json.dumps(cold.body, sort_keys=True) == json.dumps(
            warm.body, sort_keys=True
        )

    def test_served_payload_matches_engine(self, server):
        job = Job("test-serve-echo", {"value": 42})
        response = _client(server).submit("test-serve-echo", {"value": 42})
        engine = ExecutionEngine(executor=SerialExecutor(), cache=None)
        (local,) = engine.run([job])
        assert response.body["payload"] == local.payload
        assert response.body["key"] == job.key(code_version_salt())


# -- deadlines ----------------------------------------------------------------


class TestDeadlines:
    def test_slow_job_times_out_with_504(self, server):
        response = _client(server).submit(
            "chaos-sleep", {"seconds": 5.0, "nonce": "dl"}, deadline=0.3
        )
        assert response.status == 504
        assert response.error_kind() == "deadline"

    def test_deadline_clamped_to_max(self):
        server = ReproServer(
            ServeConfig(port=0, workers=1, no_cache=True, max_deadline=0.3,
                        chaos=True)
        ).start()
        try:
            response = _client(server).submit(
                "chaos-sleep", {"seconds": 5.0, "nonce": "clamp"}, deadline=60.0
            )
            assert response.status == 504
        finally:
            server.close()


# -- the client ---------------------------------------------------------------


class TestClient:
    def test_backoff_prefers_fractional_hint(self):
        client = ReproClient(retries=3, backoff_base=0.1, backoff_cap=1.0)
        client.rng = __import__("random").Random(0)
        wait = client._backoff(0, {"x-repro-retry-after": "0.25",
                                   "retry-after": "7"})
        assert 0.25 <= wait < 0.25 + 0.1 + 1e-9

    def test_backoff_grows_without_hint(self):
        client = ReproClient(retries=5, backoff_base=0.1, backoff_cap=10.0)

        class _NoJitter:
            def uniform(self, a, b):
                return 0.0

        client.rng = _NoJitter()
        assert client._backoff(0, None) == pytest.approx(0.1)
        assert client._backoff(3, None) == pytest.approx(0.8)

    def test_retries_transient_then_returns_final(self, server):
        # draining server answers 503; a 0-retry client surfaces it,
        # a retrying client keeps trying and then surfaces the last
        server.begin_drain("test")
        slept = []
        client = ReproClient(
            port=server.port, retries=2, sleep=slept.append
        )
        response = client.submit("test-serve-echo", {"value": 1})
        assert response.status == 503
        assert response.attempts == 3
        assert len(slept) == 2

    def test_unreachable_raises_client_error(self):
        from repro.serve import ClientError

        client = ReproClient(port=1, retries=1, sleep=lambda s: None,
                             timeout=0.5)
        with pytest.raises(ClientError):
            client.request("GET", "/healthz")

    def test_response_error_kind_helpers(self):
        ok = Response(200, {}, {"key": "k", "payload": {}}, 1, 0.0)
        assert ok.ok and ok.error_kind() is None
        err = Response(429, {}, {"error": {"kind": "queue-full"}}, 1, 0.0)
        assert err.error_kind() == "queue-full"


# -- loadgen ------------------------------------------------------------------


class TestLoadgen:
    def test_job_pool_is_deterministic(self):
        config = LoadgenConfig(seed=3, cases=2, vectors=2)
        assert build_job_pool(config) == build_job_pool(config)
        other = build_job_pool(LoadgenConfig(seed=4, cases=2, vectors=2))
        assert other != build_job_pool(config)

    def test_loadgen_report_stable_across_runs(self):
        from repro.serve import run_loadgen

        server = ReproServer(
            ServeConfig(port=0, workers=2, no_cache=True)
        ).start()
        try:
            config = LoadgenConfig(
                port=server.port, seed=1, clients=2, requests=4,
                cases=2, vectors=1,
            )
            first = run_loadgen(config)
            second = run_loadgen(config)
        finally:
            server.close()
        assert first.ok and second.ok
        assert first.report == second.report
        assert "verdict: PASS" in first.report
