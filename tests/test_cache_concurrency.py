"""Shared-cache contention and degradation: two (or more) engines
racing on one :class:`repro.exec.cache.ResultCache` must never serve a
torn or wrong read, eviction under contention must hold the capacity
bound, and an unwritable cache directory must degrade to warned
pass-through instead of failing the campaign.  Also covers the
per-call deadline/cancel hooks the daemon drives the engine with."""

import json
import os
import threading
import time

import pytest

from repro.exec import (
    ExecutionEngine,
    Job,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    register,
)


@register("test-cc-echo")
def _echo(params):
    return {"value": params["value"], "squared": params["value"] ** 2}


@register("test-cc-sleep")
def _sleep(params):
    time.sleep(params["seconds"])
    return {"slept": params["seconds"], "tag": params.get("tag")}


def _jobs(values, task="test-cc-echo"):
    return [Job(task, {"value": v}) for v in values]


class TestRacingEngines:
    def test_two_engines_same_jobs_identical_results(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = _jobs(range(40))
        results = {}

        def run(name):
            engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
            results[name] = engine.run(jobs)

        threads = [threading.Thread(target=run, args=(n,)) for n in "ab"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for name, batch in results.items():
            assert all(r.ok for r in batch), name
        payloads_a = [r.payload for r in results["a"]]
        payloads_b = [r.payload for r in results["b"]]
        assert payloads_a == payloads_b
        assert payloads_a == [{"value": v, "squared": v * v} for v in range(40)]
        # between them the engines hit or computed — never corrupted
        assert cache.stats.errors == 0

    def test_many_engines_interleaved_grids(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        failures = []

        def run(offset):
            engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
            jobs = _jobs(range(offset, offset + 30))
            for job, result in zip(jobs, engine.run(jobs)):
                expected = {
                    "value": job.params["value"],
                    "squared": job.params["value"] ** 2,
                }
                if not result.ok or result.payload != expected:
                    failures.append((job.params, result))

        threads = [threading.Thread(target=run, args=(off,))
                   for off in (0, 10, 20)]  # overlapping key ranges
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_warm_rerun_after_race_is_all_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = _jobs(range(15))
        threads = [
            threading.Thread(
                target=lambda: ExecutionEngine(
                    executor=SerialExecutor(), cache=cache
                ).run(jobs)
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        rerun = engine.run(jobs)
        assert all(r.cached for r in rerun)
        assert engine.metrics.cache_hits == 15


class TestEvictionUnderContention:
    def test_capacity_bound_holds_with_racing_writers(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), capacity=10)

        def run(offset):
            engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
            engine.run(_jobs(range(offset, offset + 25)))

        threads = [threading.Thread(target=run, args=(off,))
                   for off in (0, 25)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # eviction may transiently overshoot between the two writers,
        # but a final enforcement settles exactly at capacity — and
        # every surviving entry is readable and correct
        cache._enforce_capacity()
        assert len(cache) <= 10
        for key in cache.entries():
            path = cache._path(key)
            entry = json.loads(open(path).read())
            assert entry["key"] == key
            value = entry["payload"]["value"]
            assert entry["payload"]["squared"] == value * value

    def test_no_scratch_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        threads = [
            threading.Thread(
                target=lambda off: ExecutionEngine(
                    executor=SerialExecutor(), cache=cache
                ).run(_jobs(range(off, off + 20))),
                args=(off,),
            )
            for off in (0, 5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.remove_temp_files() == 0


class TestUnwritableCacheDegradation:
    def _squatted_cache(self, tmp_path):
        """A cache whose root path is occupied by a regular file, so
        every write attempt raises an OSError (works even as root,
        where permission bits would not stop us)."""
        squatter = tmp_path / "cache"
        squatter.write_text("i am a file, not a directory")
        return ResultCache(str(squatter))

    def test_put_degrades_to_passthrough_with_one_warning(self, tmp_path, capsys):
        cache = self._squatted_cache(tmp_path)
        engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        results = engine.run(_jobs(range(4)))
        assert all(r.ok for r in results)  # campaign unaffected
        assert cache.read_only
        assert cache.stats.write_errors == 4
        assert cache.stats.puts == 0
        err = capsys.readouterr().err
        assert err.count("is unwritable") == 1  # warned exactly once

    def test_reads_still_served_after_degradation(self, tmp_path, capsys):
        cache = ResultCache(str(tmp_path / "cache"))
        warm = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        warm.run(_jobs(range(3)))
        # now break writes only: mark read_only as the degradation does
        cache.read_only = True
        engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        results = engine.run(_jobs(range(6)))
        assert all(r.ok for r in results)
        assert [r.cached for r in results] == [True] * 3 + [False] * 3

    def test_engine_interrupt_cleanup_is_safe_on_squatted_root(self, tmp_path):
        cache = self._squatted_cache(tmp_path)
        engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        engine.abort()  # must not raise on the unusable root


class TestDeadlineAndCancelHooks:
    """The per-call overrides the daemon uses: ``engine.run(jobs,
    timeout=...)`` preempts, ``cancel`` stops between jobs, and
    cancelled work is visible in the metrics."""

    def test_per_call_timeout_overrides_executor_default(self):
        executor = ProcessExecutor(workers=1, serial_fallback=False,
                                   timeout=None)
        engine = ExecutionEngine(executor=executor, cache=None)
        (result,) = engine.run(
            [Job("test-cc-sleep", {"seconds": 5.0, "value": 0})],
            timeout=0.3,
        )
        assert result.error["kind"] == "timeout"
        assert engine.metrics.timeouts == 1

    def test_serial_cancel_marks_unstarted_jobs(self):
        cancel = threading.Event()

        @register("test-cc-cancelling")
        def _cancelling(params):
            cancel.set()  # first job pulls the plug for the rest
            return {"ran": params["value"]}

        engine = ExecutionEngine(executor=SerialExecutor(), cache=None)
        results = engine.run(
            [Job("test-cc-cancelling", {"value": v}) for v in range(3)],
            cancel=cancel,
        )
        assert results[0].ok
        assert [r.error["kind"] for r in results[1:]] == ["cancelled"] * 2
        assert engine.metrics.cancelled == 2

    def test_cache_hits_served_even_when_cancelled(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = _jobs(range(3))
        ExecutionEngine(executor=SerialExecutor(), cache=cache).run(jobs)
        cancelled = threading.Event()
        cancelled.set()
        engine = ExecutionEngine(executor=SerialExecutor(), cache=cache)
        results = engine.run(jobs, cancel=cancelled)
        assert all(r.ok and r.cached for r in results)

    def test_terminate_kills_live_pools(self):
        executor = ProcessExecutor(workers=1, serial_fallback=False)
        engine = ExecutionEngine(executor=executor, cache=None)
        done = {}

        def run():
            done["results"] = engine.run(
                [Job("test-cc-sleep", {"seconds": 30.0, "value": 0})]
            )

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.5)  # let the pool spin up and start the job
        engine.abort()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "terminate() did not unblock the run"
        (result,) = done["results"]
        assert not result.ok  # killed work is an error, never a hang
