"""Tests for the IR interpreter: statement semantics, behavior
composition, subprogram calls, traces and profiling hooks."""

import pytest

from repro.apps.figures import (
    figure1_specification,
    figure2_specification,
    figure5_specification,
    figure6_specification,
    figure7_specification,
)
from repro.errors import SimulationError
from repro.sim import Probe, Simulator
from repro.spec.builder import (
    assign,
    call,
    conc,
    for_,
    if_,
    leaf,
    loop_forever,
    on_complete,
    sassign,
    seq,
    spec,
    transition,
    wait_until,
    while_,
)
from repro.spec.expr import var
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BIT, array_of, int_type
from repro.spec.variable import Role, signal, variable


def run_single(behavior, variables, inputs=None, subprograms=()):
    design = spec("T", behavior, variables=variables, subprograms=subprograms)
    design.validate()
    return Simulator(design).run(inputs=inputs)


class TestStatements:
    def test_assign_and_arithmetic(self):
        result = run_single(
            leaf("A", assign("x", (var("x") + 3) * 2)),
            [variable("x", int_type(), init=5)],
        )
        assert result.value_of("x") == 16

    def test_if_else(self):
        result = run_single(
            leaf("A", if_(var("x") > 0, [assign("y", 1)], [assign("y", 2)])),
            [variable("x", int_type(), init=-1), variable("y", int_type())],
        )
        assert result.value_of("y") == 2

    def test_elsif_chain(self):
        from repro.spec.stmt import If, body

        stmt = If(
            var("x").eq(0),
            body([assign("y", 10)]),
            elifs=(
                (var("x").eq(1), body([assign("y", 11)])),
                (var("x").eq(2), body([assign("y", 12)])),
            ),
            else_body=body([assign("y", 99)]),
        )
        result = run_single(
            leaf("A", stmt),
            [variable("x", int_type(), init=2), variable("y", int_type())],
        )
        assert result.value_of("y") == 12

    def test_while_loop(self):
        result = run_single(
            leaf("A", while_(var("i") < 5, [assign("i", var("i") + 1)])),
            [variable("i", int_type(), init=0)],
        )
        assert result.value_of("i") == 5

    def test_for_loop_sum(self):
        result = run_single(
            leaf("A", for_("k", 1, 10, [assign("s", var("s") + var("k"))])),
            [variable("s", int_type(), init=0)],
        )
        assert result.value_of("s") == 55

    def test_for_loop_empty_range(self):
        result = run_single(
            leaf("A", for_("k", 5, 1, [assign("s", var("s") + 1)])),
            [variable("s", int_type(), init=0)],
        )
        assert result.value_of("s") == 0

    def test_array_read_write(self):
        result = run_single(
            leaf(
                "A",
                for_("i", 0, 3, [assign(var("a").index(var("i")), var("i") * 2)]),
                assign("x", var("a").index(3)),
            ),
            [
                variable("a", array_of(int_type(8), 4)),
                variable("x", int_type()),
            ],
        )
        assert result.value_of("a") == (0, 2, 4, 6)
        assert result.value_of("x") == 6

    def test_array_out_of_bounds(self):
        with pytest.raises(SimulationError):
            run_single(
                leaf("A", assign(var("a").index(7), 1)),
                [variable("a", array_of(int_type(8), 4))],
            )

    def test_division_truncates_toward_zero(self):
        result = run_single(
            leaf("A", assign("q", var("x") / 4), assign("r", (var("x") + 0) / 2)),
            [
                variable("x", int_type(), init=-7),
                variable("q", int_type()),
                variable("r", int_type()),
            ],
        )
        assert result.value_of("q") == -1
        assert result.value_of("r") == -3

    def test_division_by_zero(self):
        with pytest.raises(SimulationError):
            run_single(
                leaf("A", assign("q", var("x") / var("z"))),
                [
                    variable("x", int_type(), init=1),
                    variable("z", int_type(), init=0),
                    variable("q", int_type()),
                ],
            )

    def test_assignment_coerces_to_width(self):
        result = run_single(
            leaf("A", assign("x", 300)),
            [variable("x", int_type(8))],
        )
        assert result.value_of("x") == 44  # 300 wraps in 8-bit signed

    def test_wait_for_advances_time(self):
        result = run_single(leaf("A", *( [ ] )) , [])
        assert result.time == 0.0
        from repro.spec.builder import wait_for

        result = run_single(leaf("A", wait_for(100)), [])
        assert result.time == pytest.approx(100e-9)


class TestSequentialComposition:
    def test_figure1_takes_b_branch(self):
        design = figure1_specification()
        design.validate()
        result = Simulator(design).run(inputs={"seed": 3})
        # A: x = 4; x > 1 -> B: x = 8, result = 8
        assert result.value_of("result") == 8
        assert result.completed

    def test_figure1_takes_c_branch(self):
        design = figure1_specification()
        result = Simulator(design).run(inputs={"seed": -5})
        # A: x = -4; x < 1 -> C: x = 0, result = -1
        assert result.value_of("result") == -1

    def test_figure1_no_arc_completes(self):
        design = figure1_specification()
        result = Simulator(design).run(inputs={"seed": 0})
        # A: x = 1; neither arc -> composite completes, result untouched
        assert result.value_of("result") == 0
        assert result.completed

    def test_figure6_transition_conditions(self):
        design = figure6_specification()
        design.validate()
        result = Simulator(design).run()
        # x=1: B1 -> x=3 (>1) -> B2 -> x=9 (>5) -> B3 -> out=9
        assert result.value_of("out") == 9

    def test_back_arc_loops(self):
        a = leaf("A", assign("n", var("n") + 1))
        b = leaf("B", assign("m", var("m") + 10))
        top = seq(
            "L",
            [a, b],
            transitions=[
                transition("A", None, "B"),
                transition("B", var("n") < 3, "A"),
                on_complete("B", var("n") >= 3),
            ],
        )
        result = run_single(
            top,
            [variable("n", int_type(), init=0), variable("m", int_type(), init=0)],
        )
        assert result.value_of("n") == 3
        assert result.value_of("m") == 30

    def test_behavior_locals_reinitialised_on_reentry(self):
        a = leaf("A", assign("t", var("t") + 1), assign("seen", var("t")))
        a.add_decl(variable("t", int_type(), init=0))
        top = seq(
            "L",
            [a],
            transitions=[
                transition("A", var("count") < 1, "A"),
            ],
        )
        # 'count' never increments so guard against infinite loop with
        # an arc that eventually fails: use count from A's executions
        a2 = leaf(
            "Count", assign("count", var("count") + 1)
        )
        top = seq(
            "L",
            [a, a2],
            transitions=[
                transition("A", None, "Count"),
                transition("Count", var("count") < 3, "A"),
            ],
        )
        result = run_single(
            top,
            [
                variable("count", int_type(), init=0),
                variable("seen", int_type(), init=0),
            ],
        )
        # t restarts at 0 each entry, so seen is always 1
        assert result.value_of("seen") == 1
        assert result.value_of("count") == 3


class TestConcurrentComposition:
    def test_children_interleave_via_signals(self):
        producer = leaf(
            "Producer",
            assign("data", 42),
            sassign("ready", 1),
        )
        consumer = leaf(
            "Consumer",
            wait_until(var("ready").eq(1)),
            assign("out", var("data")),
        )
        top = conc("Top", [producer, consumer])
        result = run_single(
            top,
            [
                variable("data", int_type(), init=0),
                variable("out", int_type(), init=0, role=Role.OUTPUT),
                signal("ready", BIT, init=0),
            ],
        )
        assert result.value_of("out") == 42
        assert result.completed

    def test_daemon_child_does_not_block_completion(self):
        server = leaf(
            "Server",
            loop_forever([
                wait_until(var("req").eq(1)),
                sassign("ack", 1),
                wait_until(var("req").eq(0)),
                sassign("ack", 0),
            ]),
        )
        server.daemon = True
        client = leaf(
            "Client",
            sassign("req", 1),
            wait_until(var("ack").eq(1)),
            assign("got", 1),
            sassign("req", 0),
        )
        top = conc("Top", [server, client])
        result = run_single(
            top,
            [
                variable("got", int_type(), init=0),
                signal("req", BIT, init=0),
                signal("ack", BIT, init=0),
            ],
        )
        assert result.completed
        assert result.value_of("got") == 1
        assert "Server" in result.blocked()

    def test_figure7_concurrent_readers(self):
        design = figure7_specification()
        design.validate()
        result = Simulator(design).run()
        assert result.value_of("r1") == 12  # 3 * 4
        assert result.value_of("r2") == 27  # 3 * 9


class TestSubprograms:
    def make_design(self):
        double = Subprogram(
            "double",
            params=[
                Param("a", int_type()),
                Param("b", int_type(), Direction.OUT),
            ],
            stmt_body=[assign("b", var("a") * 2)],
        )
        body = leaf("A", call("double", var("x") + 1, "y"))
        return spec(
            "S",
            body,
            variables=[
                variable("x", int_type(), init=4),
                variable("y", int_type(), init=0),
            ],
            subprograms=[double],
        )

    def test_out_param_copy_back(self):
        design = self.make_design()
        design.validate()
        result = Simulator(design).run()
        assert result.value_of("y") == 10

    def test_inout_param(self):
        bump = Subprogram(
            "bump",
            params=[Param("v", int_type(), Direction.INOUT)],
            stmt_body=[assign("v", var("v") + 1)],
        )
        design = spec(
            "S",
            leaf("A", call("bump", "x"), call("bump", "x")),
            variables=[variable("x", int_type(), init=0)],
            subprograms=[bump],
        )
        design.validate()
        assert Simulator(design).run().value_of("x") == 2

    def test_nested_calls(self):
        inner = Subprogram(
            "inner",
            params=[Param("r", int_type(), Direction.OUT)],
            stmt_body=[assign("r", 7)],
        )
        outer = Subprogram(
            "outer",
            params=[Param("r", int_type(), Direction.OUT)],
            decls=[variable("t", int_type())],
            stmt_body=[call("inner", "t"), assign("r", var("t") + 1)],
        )
        design = spec(
            "S",
            leaf("A", call("outer", "x")),
            variables=[variable("x", int_type())],
            subprograms=[inner, outer],
        )
        design.validate()
        assert Simulator(design).run().value_of("x") == 8

    def test_out_param_to_array_element(self):
        get = Subprogram(
            "get",
            params=[Param("r", int_type(8), Direction.OUT)],
            stmt_body=[assign("r", 9)],
        )
        design = spec(
            "S",
            leaf("A", call("get", var("buf").index(1))),
            variables=[variable("buf", array_of(int_type(8), 3))],
            subprograms=[get],
        )
        design.validate()
        assert Simulator(design).run().value_of("buf") == (0, 9, 0)


class TestTraceAndInputs:
    def test_output_trace_records_writes_in_order(self):
        a = leaf("A", assign("o", 1), assign("o", 2), assign("o", 3))
        result = run_single(
            a, [variable("o", int_type(), init=0, role=Role.OUTPUT)]
        )
        assert [e.value for e in result.output_trace("o")] == [1, 2, 3]

    def test_unknown_input_rejected(self):
        design = figure1_specification()
        with pytest.raises(SimulationError):
            Simulator(design).run(inputs={"ghost": 1})

    def test_non_input_variable_rejected_as_input(self):
        design = figure1_specification()
        with pytest.raises(SimulationError):
            Simulator(design).run(inputs={"x": 1})

    def test_output_values(self):
        design = figure2_specification()
        design.validate()
        result = Simulator(design).run()
        outputs = result.output_values()
        assert set(outputs) == {"observed"}
        assert result.completed


class CountingProbe(Probe):
    def __init__(self):
        self.statements = 0
        self.reads = {}
        self.writes = {}
        self.started = []
        self.ended = []

    def on_statement(self, behavior, stmt, cost):
        self.statements += 1

    def on_read(self, behavior, variable):
        self.reads[(behavior, variable)] = self.reads.get((behavior, variable), 0) + 1

    def on_write(self, behavior, variable):
        self.writes[(behavior, variable)] = (
            self.writes.get((behavior, variable), 0) + 1
        )

    def on_behavior_start(self, behavior, time):
        self.started.append(behavior)

    def on_behavior_end(self, behavior, time):
        self.ended.append(behavior)


class TestProbe:
    def test_counts_reads_and_writes(self):
        probe = CountingProbe()
        a = leaf("A", assign("x", var("x") + var("y")))
        design = spec(
            "S",
            a,
            variables=[
                variable("x", int_type(), init=1),
                variable("y", int_type(), init=2),
            ],
        )
        Simulator(design, probe=probe).run()
        assert probe.reads[("A", "x")] == 1
        assert probe.reads[("A", "y")] == 1
        assert probe.writes[("A", "x")] == 1
        assert probe.statements == 1

    def test_loop_reads_counted_per_iteration(self):
        probe = CountingProbe()
        a = leaf("A", for_("i", 1, 4, [assign("s", var("s") + var("d"))]))
        design = spec(
            "S",
            a,
            variables=[
                variable("s", int_type(), init=0),
                variable("d", int_type(), init=1),
            ],
        )
        Simulator(design, probe=probe).run()
        assert probe.reads[("A", "d")] == 4
        assert probe.writes[("A", "s")] == 4

    def test_behavior_lifecycle_events(self):
        probe = CountingProbe()
        design = figure1_specification()
        Simulator(design, probe=probe).run()
        assert probe.started[0] == "Main"
        assert "A" in probe.started
        assert "Main" in probe.ended

    def test_transition_condition_reads_attributed_to_composite(self):
        probe = CountingProbe()
        design = figure1_specification()
        Simulator(design, probe=probe).run(inputs={"seed": 5})
        # the arc conditions A:(x>1,B), A:(x<1,C) are evaluated by
        # Main's sequencer after A completes
        assert probe.reads.get(("Main", "x"), 0) >= 1


class TestCostFunction:
    def test_cost_fn_advances_time(self):
        design = figure1_specification()
        result = Simulator(design, cost_fn=lambda b, s: 1e-6).run()
        # A executes 1 stmt, B 2 stmts (seed=3 path) -> at least 3 us
        assert result.time >= 3e-6

    def test_zero_cost_keeps_time_zero(self):
        design = figure1_specification()
        result = Simulator(design).run()
        assert result.time == 0.0
