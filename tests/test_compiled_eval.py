"""Cached (compiled) evaluation must be indistinguishable from the
reference tree walker: same values, same error messages, same designs.

The compiled fast path (``Simulator(compile_cache=True)``, the default)
closes every expression/statement into a Python closure once; these
tests pin its behavior to the interpretive walker
(``compile_cache=False``), including the constant-operand fusions and
boolean refinements in :class:`repro.sim.eval.ExprCompiler`.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.errors import SimulationError
from repro.models.impl_models import ALL_MODELS
from repro.refine.refiner import Refiner
from repro.sim import Simulator
from repro.sim.eval import Env, ExprCompiler, Frame, evaluate
from repro.sim.kernel import Kernel
from repro.spec.builder import assign, leaf, spec
from repro.spec.expr import BINARY_OPS, BinOp, Const, Index, UnaryOp, VarRef, var
from repro.spec.types import int_type
from repro.spec.variable import variable


def make_env():
    kernel = Kernel()
    kernel.register_signal("sig", 3)
    frame = Frame("test")
    frame.declare_raw("x", 7)
    frame.declare_raw("y", -2)
    frame.declare_raw("zero", 0)
    frame.declare_raw("flag", True)
    frame.declare_raw("arr", (10, 20, 30))
    return Env(kernel, (frame,))


def parity_cases():
    x, y, sig, flag = VarRef("x"), VarRef("y"), VarRef("sig"), VarRef("flag")
    cases = []
    # every binary operator, variable and constant operand shapes
    for op in BINARY_OPS:
        if op in ("and", "or"):
            cases += [
                BinOp(op, flag, BinOp("<", y, Const(0))),
                BinOp(op, BinOp("=", x, Const(7)), flag),
            ]
        else:
            cases += [
                BinOp(op, x, y),  # both variable
                BinOp(op, x, Const(3)),  # fused constant right
                BinOp(op, Const(3), x),  # constant left
            ]
    for op in BINARY_OPS:
        if op in ("and", "or"):
            cases += [
                BinOp(op, Const(True), flag),  # constant boolean left
                BinOp(op, flag, Const(False)),  # constant boolean right
            ]
        else:
            cases += [BinOp(op, Const(3), Const(2))]  # both constant
    cases += [
        UnaryOp("-", x),
        UnaryOp("abs", y),
        UnaryOp("not", flag),
        UnaryOp("not", BinOp("<", x, Const(0))),  # boolean-typed operand
        UnaryOp("-", Const(5)),  # constant unary operands
        UnaryOp("abs", Const(-3)),
        UnaryOp("not", Const(False)),
        Index(VarRef("arr"), BinOp("-", x, Const(6))),
        Index(VarRef("arr"), Const(1)),  # constant index
        BinOp("+", sig, Const(1)),  # signal read
        Const(True),
        Const(42),
    ]
    return cases


class TestExpressionParity:
    @pytest.mark.parametrize("expr", parity_cases(), ids=str)
    def test_compiled_matches_walker(self, expr):
        env = make_env()
        compiled = ExprCompiler().compile(expr)
        assert compiled(env) == evaluate(expr, env)

    def test_compile_is_memoized_by_node(self):
        compiler = ExprCompiler()
        expr = BinOp("+", VarRef("x"), Const(1))
        assert compiler.compile(expr) is compiler.compile(expr)

    @pytest.mark.parametrize("op", ["/", "mod"])
    def test_zero_division_message_parity(self, op):
        expr = BinOp(op, VarRef("x"), VarRef("zero"))
        with pytest.raises(SimulationError) as compiled_error:
            ExprCompiler().compile(expr)(make_env())
        with pytest.raises(SimulationError) as walker_error:
            evaluate(expr, make_env())
        assert str(compiled_error.value) == str(walker_error.value)

    @pytest.mark.parametrize("op", ["/", "mod"])
    def test_const_zero_divisor_message_parity(self, op):
        # '/' and 'mod' have no constant-operand fast path precisely so
        # a literal zero divisor raises the walker's exact runtime error
        expr = BinOp(op, VarRef("x"), Const(0))
        with pytest.raises(SimulationError) as compiled_error:
            ExprCompiler().compile(expr)(make_env())
        with pytest.raises(SimulationError) as walker_error:
            evaluate(expr, make_env())
        assert str(compiled_error.value) == str(walker_error.value)

    @pytest.mark.parametrize("op", ["/", "mod"])
    def test_const_zero_divisor_not_folded_at_compile_time(self, op):
        # compiling must not evaluate the division: the error is a
        # runtime property of the expression, not a compile-time one
        expr = BinOp(op, VarRef("x"), Const(0))
        compiled = ExprCompiler().compile(expr)  # must not raise
        with pytest.raises(SimulationError):
            compiled(make_env())

    @pytest.mark.parametrize(
        "expr",
        [
            # bools are not numbers: the constant-operand fusion must
            # not treat a boolean literal as a numeric constant (Python
            # would happily compute x + True), and both strategies must
            # reject it with the same runtime type error
            BinOp("+", VarRef("x"), Const(True)),
            BinOp("+", VarRef("flag"), Const(1)),
            BinOp("*", Const(False), VarRef("x")),
        ],
        ids=str,
    )
    def test_bool_arithmetic_rejected_identically(self, expr):
        with pytest.raises(SimulationError) as compiled_error:
            ExprCompiler().compile(expr)(make_env())
        with pytest.raises(SimulationError) as walker_error:
            evaluate(expr, make_env())
        assert str(compiled_error.value) == str(walker_error.value)

    def test_unbound_name_message_parity(self):
        expr = VarRef("missing")
        with pytest.raises(SimulationError) as compiled_error:
            ExprCompiler().compile(expr)(make_env())
        with pytest.raises(SimulationError) as walker_error:
            evaluate(expr, make_env())
        assert str(compiled_error.value) == str(walker_error.value)

    def test_resolution_cache_is_per_env(self):
        compiled = ExprCompiler().compile(VarRef("x"))
        env_a, env_b = make_env(), make_env()
        assert compiled(env_a) == 7
        env_b.frames[0].slots["x"][1] = 100
        assert compiled(env_b) == 100  # no cross-env leakage
        assert compiled(env_a) == 7


def run_both_modes(design_spec, inputs=None):
    cached = Simulator(design_spec, compile_cache=True).run(inputs=inputs)
    walked = Simulator(design_spec, compile_cache=False).run(inputs=inputs)
    return cached, walked


class TestSimulatorParity:
    def test_refined_medical_designs_match(self):
        source = medical_specification()
        source.validate()
        partition = all_designs(source)["Design1"]
        for model in (ALL_MODELS[0], ALL_MODELS[-1]):  # Model1 and Model4
            refined = Refiner(source, partition, model).run()
            cached, walked = run_both_modes(
                refined.spec, inputs=dict(MEDICAL_INPUTS)
            )
            assert cached.completed and walked.completed
            assert cached.output_values() == walked.output_values()
            assert cached.time == walked.time

    def test_runtime_error_message_parity(self):
        design = spec(
            "T",
            leaf("A", assign("q", var("x") / var("z"))),
            variables=[
                variable("x", int_type(), init=1),
                variable("z", int_type(), init=0),
                variable("q", int_type()),
            ],
        )
        design.validate()
        with pytest.raises(SimulationError) as cached_error:
            Simulator(design, compile_cache=True).run()
        with pytest.raises(SimulationError) as walker_error:
            Simulator(design, compile_cache=False).run()
        assert str(cached_error.value) == str(walker_error.value)

    def test_rerun_reuses_statement_cache(self):
        design = spec(
            "T",
            leaf("A", assign("x", var("x") + 1)),
            variables=[variable("x", int_type(), init=0)],
        )
        design.validate()
        simulator = Simulator(design)
        first = simulator.run()
        cached_size = len(simulator._stmt_cache)
        assert cached_size > 0
        second = simulator.run()
        assert len(simulator._stmt_cache) == cached_size  # no recompile
        assert first.value_of("x") == second.value_of("x") == 1
