"""Unit tests for the statement AST and builder helpers."""

import pytest

from repro.errors import SpecError
from repro.spec.builder import (
    assign,
    call,
    for_,
    if_,
    loop_forever,
    sassign,
    skip,
    wait_for,
    wait_on,
    wait_until,
    while_,
)
from repro.spec.expr import Const, Index, VarRef, var
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Wait,
    While,
    body,
    lvalue_name,
)


class TestAssign:
    def test_builder(self):
        stmt = assign("x", var("x") + 5)
        assert isinstance(stmt, Assign)
        assert stmt.target == VarRef("x")

    def test_array_target(self):
        stmt = assign(var("a").index(2), 7)
        assert isinstance(stmt.target, Index)
        assert lvalue_name(stmt.target) == "a"

    def test_invalid_target(self):
        with pytest.raises(SpecError):
            Assign(Const(5), Const(6))

    def test_expressions(self):
        stmt = assign("x", var("y"))
        assert VarRef("y") in stmt.expressions()

    def test_str(self):
        assert str(assign("x", var("x") + 5)) == "x := (x + 5);"


class TestSignalAssign:
    def test_builder(self):
        stmt = sassign("bus_start", 1)
        assert isinstance(stmt, SignalAssign)
        assert str(stmt) == "bus_start <= 1;"


class TestIf:
    def test_builder(self):
        stmt = if_(var("x") > 1, [assign("y", 1)], [assign("y", 2)])
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_child_bodies(self):
        stmt = If(
            var("a").eq(0),
            body([skip()]),
            elifs=((var("a").eq(1), body([skip()])),),
            else_body=body([skip(), skip()]),
        )
        bodies = stmt.child_bodies()
        assert len(bodies) == 3
        assert len(bodies[2]) == 2

    def test_expressions_include_elif_conditions(self):
        stmt = If(
            var("a").eq(0),
            body([]),
            elifs=((var("b").eq(1), body([])),),
        )
        assert len(stmt.expressions()) == 2


class TestLoops:
    def test_while(self):
        stmt = while_(var("i") < 10, [assign("i", var("i") + 1)], expected=10)
        assert isinstance(stmt, While)
        assert stmt.expected_iterations == 10

    def test_loop_forever_condition_is_true(self):
        stmt = loop_forever([skip()])
        assert stmt.cond == Const(True)

    def test_for(self):
        stmt = for_("i", 0, 7, [assign("s", var("s") + var("i"))])
        assert isinstance(stmt, For)
        assert stmt.variable == "i"

    def test_for_needs_name(self):
        with pytest.raises(SpecError):
            For("", Const(0), Const(1), body([]))


class TestWait:
    def test_until(self):
        stmt = wait_until(var("b_start").eq(1))
        assert stmt.until is not None

    def test_on(self):
        stmt = wait_on("clk", "rst")
        assert stmt.on == ("clk", "rst")

    def test_for(self):
        assert wait_for(5).delay == 5

    def test_exactly_one_form(self):
        with pytest.raises(SpecError):
            Wait()
        with pytest.raises(SpecError):
            Wait(until=Const(True), delay=1)

    def test_negative_delay(self):
        with pytest.raises(SpecError):
            Wait(delay=-1)

    def test_str(self):
        assert str(wait_for(3)) == "wait for 3;"
        assert str(wait_on("s")) == "wait on s;"


class TestCall:
    def test_builder_lifts_names_to_refs(self):
        stmt = call("MST_receive", "x_addr", "tmp")
        assert stmt.args == (VarRef("x_addr"), VarRef("tmp"))

    def test_builder_lifts_ints(self):
        stmt = call("MST_send", 3, var("v"))
        assert stmt.args[0] == Const(3)

    def test_needs_name(self):
        with pytest.raises(SpecError):
            CallStmt("")


class TestBody:
    def test_rejects_non_statements(self):
        with pytest.raises(SpecError):
            body([assign("x", 1), "oops"])

    def test_is_tuple(self):
        b = body([skip()])
        assert isinstance(b, tuple)
