"""Unit tests for the lexer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        token = tokenize("B_start")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "B_start"

    def test_keyword_case_insensitive(self):
        assert tokenize("BEGIN")[0].kind is TokenKind.KEYWORD
        assert tokenize("Begin")[0].text == "begin"

    def test_integer(self):
        token = tokenize("12345")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 12345

    def test_char_literal(self):
        token = tokenize("'idle'")[0]
        assert token.kind is TokenKind.CHAR
        assert token.text == "idle"

    def test_comment_skipped(self):
        assert texts("x -- this is a comment\ny") == ["x", "y"]

    def test_comment_to_eof(self):
        assert texts("x -- trailing") == ["x"]


class TestSymbols:
    def test_multi_char_symbols(self):
        assert texts(":= <= >= /= ->") == [":=", "<=", ">=", "/=", "->"]

    def test_multi_before_single(self):
        # '<=' must not lex as '<' '='
        tokens = tokenize("a<=b")
        assert [t.text for t in tokens[:-1]] == ["a", "<=", "b"]

    def test_single_symbols(self):
        assert texts("( ) [ ] ; , : + - * / = < >") == list("()[];,:+-*/=<>")

    def test_arrow_vs_minus(self):
        assert texts("a - > b -> c") == ["a", "-", ">", "b", "->", "c"]


class TestPositions:
    def test_line_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("ok\n  @")
        assert err.value.line == 2
        assert err.value.column == 3


class TestErrors:
    def test_unterminated_char(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_empty_char(self):
        with pytest.raises(ParseError):
            tokenize("''")

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize("x # y")


class TestMultiLineLiterals:
    """Regression: a quote left open used to scan past the newline to
    the next quote in the file, silently desynchronising line/column
    tracking for every subsequent token (and pointing errors at the
    wrong place).  A character literal never spans lines."""

    def test_unterminated_char_does_not_eat_the_next_line(self):
        with pytest.raises(ParseError) as err:
            tokenize("x = 'a\ny = 'b'")
        assert err.value.line == 1
        assert err.value.column == 5  # the opening quote, not the next line

    def test_positions_after_literal_stay_correct(self):
        tokens = tokenize("'a' b\nc")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (1, 5)
        assert (tokens[2].line, tokens[2].column) == (2, 1)

    def test_unterminated_at_eof(self):
        with pytest.raises(ParseError) as err:
            tokenize("'oops")
        assert (err.value.line, err.value.column) == (1, 1)
