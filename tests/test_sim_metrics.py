"""Tests for the observability layer: SimMetrics / Tracer / PhaseTimer,
their kernel wiring, and the sensitivity-index wakeup edge cases."""

import pytest

from repro.sim import Simulator
from repro.sim.faults import FaultInjector, FaultScenario
from repro.sim.kernel import Kernel, WaitCondition, WaitDelay
from repro.sim.metrics import PhaseTimer, SimMetrics, TraceRecord, Tracer
from repro.spec.builder import assign, leaf, spec
from repro.spec.expr import var
from repro.spec.types import int_type
from repro.spec.variable import variable


def waiting_kernel(metrics=None, initial=0):
    """A kernel with signal ``s`` and one process waiting for s == 1."""
    k = Kernel(metrics=metrics)
    k.register_signal("s", initial)
    woken = []

    def waiter():
        yield WaitCondition(
            lambda: k.read_signal("s") == 1, sensitivity=("s",), label="s = 1"
        )
        woken.append(k.now)

    process = k.spawn("waiter", waiter())
    return k, process, woken


class TestCounters:
    def test_activation_and_timestep_counts(self):
        m = SimMetrics()
        k = Kernel(metrics=m)

        def proc():
            yield WaitDelay(1)
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        # initial activation plus one resume per delay expiry
        assert m.activations == 3
        assert m.timesteps == 2
        assert m.processes_spawned == 1
        assert m.wall_seconds > 0.0

    def test_write_update_change_distinction(self):
        m = SimMetrics()
        k = Kernel(metrics=m)
        k.register_signal("s", 0)

        def proc():
            k.write_signal("s", 0)  # scheduled, applied, but no change
            yield WaitDelay(1)
            k.write_signal("s", 1)
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert m.signal_writes == 2
        assert m.signal_updates == 2
        assert m.signal_changes == 1

    def test_unchanged_write_wakes_nobody(self):
        m = SimMetrics()
        k, process, woken = waiting_kernel(metrics=m)

        def writer():
            k.write_signal("s", 0)  # current value: no delta, no wakeup
            yield WaitDelay(1)
            k.write_signal("s", 1)

        k.spawn("writer", writer())
        k.run()
        assert woken == [1]
        assert m.wakeups == 1
        assert m.delta_cycles == 1  # only the 0 -> 1 update applied one

    def test_kill_while_indexed(self):
        m = SimMetrics()
        k, process, woken = waiting_kernel(metrics=m)
        k.kill(process)

        def writer():
            k.write_signal("s", 1)
            yield WaitDelay(1)

        k.spawn("writer", writer())
        k.run()  # the change must not wake (or crash on) the dead waiter
        assert woken == []
        assert process.killed
        assert m.processes_killed == 1
        assert m.wakeups == 0

    def test_max_delta_streak(self):
        m = SimMetrics()
        k = Kernel(metrics=m)
        k.register_signal("s", 0)

        def proc():
            for value in (1, 2, 3):
                k.write_signal("s", value)
                yield WaitCondition(
                    lambda v=value: k.read_signal("s") == v, ("s",)
                )
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert m.delta_cycles == 3
        assert m.max_delta_streak == 3
        assert m.timesteps == 1

    def test_accumulate_across_runs_and_reset(self):
        design = spec(
            "T",
            leaf("A", assign("x", var("x") + 1)),
            variables=[variable("x", int_type(), init=0)],
        )
        design.validate()
        simulator = Simulator(design)
        m = SimMetrics()
        simulator.run(metrics=m)
        after_one = m.activations
        simulator.run(metrics=m)
        assert m.activations == 2 * after_one
        m.reset()
        assert m.activations == 0 and m.wall_seconds == 0.0

    def test_as_dict_matches_fields(self):
        m = SimMetrics()
        data = m.as_dict()
        assert set(data) == {name for name, _ in SimMetrics.FIELDS} | {
            "wall_seconds"
        }
        assert "delta cycles" in m.describe()


class TestBusTransactions:
    def run_strobe(self, values, initial=0, patterns=None):
        m = SimMetrics(**({"bus_patterns": patterns} if patterns else {}))
        k = Kernel(metrics=m)
        k.register_signal("b1_start", initial)

        def proc():
            for value in values:
                k.write_signal("b1_start", value)
                yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        return m

    def test_rising_strobe_counts(self):
        assert self.run_strobe([1, 0, 1]).bus_transactions == 2

    def test_falling_edge_does_not_count(self):
        assert self.run_strobe([0], initial=1).bus_transactions == 0

    def test_unchanged_truthy_write_does_not_count(self):
        assert self.run_strobe([1, 1, 1]).bus_transactions == 1

    def test_custom_patterns(self):
        m = self.run_strobe([1], patterns=("other_*",))
        assert m.bus_transactions == 0
        assert m.is_bus_strobe("other_x") and not m.is_bus_strobe("b1_start")


class TestFaultMetrics:
    def test_dropped_write_counts_fault_not_write(self):
        scenario = FaultScenario(
            name="drop-s", kind="drop", target="s", expect="detect"
        )
        m = SimMetrics()
        k = Kernel(injector=FaultInjector([scenario]), metrics=m)
        k.register_signal("s", 0)

        def proc():
            k.write_signal("s", 1)
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert m.faults == 1
        assert m.signal_writes == 0  # the dropped write never scheduled
        assert k.read_signal("s") == 0

    def test_kill_fault_counts(self):
        scenario = FaultScenario(
            name="kill-p", kind="kill", target="p", expect="detect"
        )
        m = SimMetrics()
        k = Kernel(injector=FaultInjector([scenario]), metrics=m)

        def proc():
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        assert m.faults == 1
        assert m.processes_killed == 1


class TestTracer:
    def run_traced(self, tracer):
        k = Kernel(tracer=tracer)
        k.register_signal("s", 0)

        def proc():
            k.write_signal("s", 1)
            yield WaitDelay(1)

        k.spawn("p", proc())
        k.run()
        return tracer

    def test_records_scheduler_events(self):
        tracer = self.run_traced(Tracer())
        kinds = {event.kind for event in tracer.events}
        assert {"run", "delta", "advance"} <= kinds
        first = tracer.events[0]
        assert isinstance(first, TraceRecord)
        assert first.kind == "run" and first.detail == "p"
        assert "t=" in str(first)

    def test_limit_and_dropped(self):
        tracer = self.run_traced(Tracer(limit=2))
        assert len(tracer) == 2
        assert tracer.dropped > 0

    def test_kind_filter(self):
        tracer = self.run_traced(Tracer(kinds=("delta",)))
        assert {event.kind for event in tracer.events} == {"delta"}
        assert tracer.as_dicts()[0]["detail"] == "s"

    def test_describe_last(self):
        tracer = self.run_traced(Tracer())
        assert tracer.describe(last=1).count("\n") == 0


class TestPhaseTimer:
    def test_accumulates_and_orders(self):
        timer = PhaseTimer()
        with timer.phase("b"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert list(timer.as_dict()) == ["b", "a"]
        assert timer.seconds("b") >= 0.0
        assert timer.total == pytest.approx(
            timer.seconds("a") + timer.seconds("b")
        )
        assert "total" in timer.describe()

    def test_empty(self):
        assert PhaseTimer().describe() == "no phases recorded"
        assert PhaseTimer().total == 0.0


class TestSimulatorIntegration:
    def test_runs_are_deterministic(self):
        design = spec(
            "T",
            leaf("A", assign("x", var("x") + 1)),
            variables=[variable("x", int_type(), init=0)],
        )
        design.validate()
        first, second = SimMetrics(), SimMetrics()
        Simulator(design).run(metrics=first)
        Simulator(design).run(metrics=second)
        counters = lambda m: {
            k: v for k, v in m.as_dict().items() if k != "wall_seconds"
        }
        assert counters(first) == counters(second)
        assert first.activations > 0
