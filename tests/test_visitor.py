"""Unit tests for the generic statement/expression walkers and
transformers the refiners are built on."""

import pytest

from repro.errors import SpecError
from repro.spec.builder import (
    assign,
    call,
    for_,
    if_,
    sassign,
    skip,
    wait_until,
    while_,
)
from repro.spec.expr import Const, VarRef, substitute, var
from repro.spec.stmt import Assign, CallStmt, If, Null, While, body
from repro.spec.visitor import (
    body_variable_accesses,
    count_statements,
    map_expressions,
    statement_reads,
    statement_writes,
    transform_body,
    walk_expressions,
    walk_statements,
)


@pytest.fixture()
def nested_body():
    return body(
        [
            assign("a", var("b") + 1),
            if_(
                var("a") > 0,
                [while_(var("c") < 5, [assign("c", var("c") + var("a"))])],
                [skip()],
            ),
            for_("i", 0, 3, [assign("d", var("i"))]),
        ]
    )


class TestWalkers:
    def test_walk_statements_counts_nested(self, nested_body):
        kinds = [type(s).__name__ for s in walk_statements(nested_body)]
        assert kinds.count("Assign") == 3
        assert "While" in kinds and "For" in kinds and "Null" in kinds
        assert count_statements(nested_body) == len(kinds)

    def test_walk_expressions_reaches_loop_bodies(self, nested_body):
        names = {
            n.name for n in walk_expressions(nested_body)
            if isinstance(n, VarRef)
        }
        assert {"a", "b", "c", "d", "i"} <= names


class TestTransformBody:
    def test_identity(self, nested_body):
        result = transform_body(nested_body, lambda s: [s])
        assert count_statements(result) == count_statements(nested_body)

    def test_expansion(self):
        stmts = body([assign("x", 1), assign("y", 2)])
        result = transform_body(
            stmts, lambda s: [s, skip()] if isinstance(s, Assign) else [s]
        )
        kinds = [type(s).__name__ for s in result]
        assert kinds == ["Assign", "Null", "Assign", "Null"]

    def test_deletion(self):
        stmts = body([assign("x", 1), skip(), assign("y", 2)])
        result = transform_body(
            stmts, lambda s: [] if isinstance(s, Null) else [s]
        )
        assert len(result) == 2

    def test_transforms_nested_bodies_first(self):
        stmts = body([if_(var("p") > 0, [skip()])])
        seen = []
        def fn(s):
            seen.append(type(s).__name__)
            return [s]
        transform_body(stmts, fn)
        assert seen == ["Null", "If"]  # bottom-up

    def test_while_annotation_preserved(self):
        stmts = body([while_(var("x") > 0, [skip()], expected=7)])
        result = transform_body(stmts, lambda s: [s])
        assert result[0].expected_iterations == 7


class TestMapExpressions:
    def test_assign(self):
        stmt = assign("x", var("y"))
        mapped = map_expressions(stmt, lambda e: substitute(e, {"y": var("z")}))
        assert mapped.value == VarRef("z")

    def test_if_maps_all_conditions(self):
        stmt = If(
            var("a") > 0,
            body([skip()]),
            elifs=((var("b") > 0, body([skip()])),),
        )
        mapped = map_expressions(
            stmt, lambda e: substitute(e, {"a": var("p"), "b": var("q")})
        )
        from repro.spec.expr import free_variables

        assert free_variables(mapped.cond) == {"p"}
        assert free_variables(mapped.elifs[0][0]) == {"q"}

    def test_nested_bodies_untouched(self):
        inner = assign("x", var("y"))
        stmt = If(var("a") > 0, body([inner]))
        mapped = map_expressions(stmt, lambda e: substitute(e, {"y": var("z")}))
        assert mapped.then_body[0] is inner

    def test_call_args_mapped(self):
        stmt = call("p", var("a"), 3)
        mapped = map_expressions(stmt, lambda e: substitute(e, {"a": var("b")}))
        assert mapped.args[0] == VarRef("b")

    def test_wait_until_mapped(self):
        stmt = wait_until(var("s").eq(1))
        mapped = map_expressions(stmt, lambda e: substitute(e, {"s": var("t")}))
        from repro.spec.expr import free_variables

        assert free_variables(mapped.until) == {"t"}


class TestAccessExtraction:
    def test_reads_exclude_write_target(self):
        stmt = assign("x", var("y") + var("z"))
        assert set(statement_reads(stmt)) == {"y", "z"}
        assert statement_writes(stmt) == ["x"]

    def test_array_write_index_is_a_read(self):
        stmt = assign(var("a").index(var("i")), var("v"))
        assert set(statement_reads(stmt)) == {"i", "v"}
        assert statement_writes(stmt) == ["a"]

    def test_signal_assign_tracked(self):
        stmt = sassign("s", var("x"))
        assert statement_reads(stmt) == ["x"]
        assert statement_writes(stmt) == ["s"]

    def test_body_variable_accesses_aggregates(self, nested_body):
        reads, writes = body_variable_accesses(nested_body)
        assert reads["b"] == 1
        assert writes["a"] == 1
        assert writes["c"] == 1
        assert reads["c"] >= 2  # loop condition + body read
