"""Pipeline span tracer: nesting, aggregation, Chrome export, no-op mode."""

import json

import pytest

from repro.apps.medical import all_designs, medical_specification
from repro.models import resolve_model
from repro.obs.trace import NULL_TRACER, SpanTracer, validate_chrome_trace
from repro.refine import Refiner

#: Every refinement procedure must show up as a span (acceptance
#: criterion: at least one span per procedure).
REFINE_PROCEDURES = (
    "validate",
    "plan",
    "control",
    "data",
    "memory",
    "businterface",
    "arbiter",
    "emitter",
    "assemble",
)


class TestSpanTracer:
    def test_nesting_follows_context_managers(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert [s.name for s in outer.iter_tree()] == [
            "outer", "inner", "leaf", "sibling",
        ]
        assert tracer.current is None

    def test_spans_record_durations_and_attrs(self):
        tracer = SpanTracer()
        with tracer.span("work", category="test", flavor="unit") as span:
            span.set("items", 3)
            span.add("retries")
            span.add("retries")
        assert span.end is not None
        assert span.seconds >= 0.0
        assert span.attrs == {"flavor": "unit", "items": 3, "retries": 2}

    def test_aggregate_accumulates_roots_in_first_entry_order(self):
        tracer = SpanTracer()
        with tracer.span("a", category="phase"):
            with tracer.span("nested", category="phase"):
                pass
        with tracer.span("b", category="phase"):
            pass
        with tracer.span("a", category="phase"):
            pass
        with tracer.span("other", category="pipeline"):
            pass
        buckets = tracer.aggregate(category="phase")
        # roots only (no "nested"), re-entry accumulated, order preserved
        assert list(buckets) == ["a", "b"]
        assert buckets["a"] >= tracer.roots[0].seconds
        assert tracer.aggregate() == tracer.aggregate(category=None)
        assert "other" in tracer.aggregate()

    def test_find_by_name_and_category(self):
        tracer = SpanTracer()
        with tracer.span("x", category="one"):
            with tracer.span("x", category="two"):
                pass
        assert tracer.find("x").category == "one"
        assert tracer.find("x", category="two").category == "two"
        assert tracer.find("missing") is None

    def test_describe_renders_a_tree(self):
        tracer = SpanTracer()
        assert tracer.describe() == "no spans recorded"
        with tracer.span("root", items=2):
            with tracer.span("child"):
                pass
        text = tracer.describe()
        assert "root" in text and "items=2" in text
        assert "\n  child" in text  # indented under the root


class TestChromeExport:
    def test_export_is_schema_valid(self):
        tracer = SpanTracer()
        with tracer.span("pipeline"):
            with tracer.span("refine", lines=42):
                pass
        data = json.loads(tracer.to_chrome_json())
        assert validate_chrome_trace(data) == 3  # metadata + 2 spans
        assert data["displayTimeUnit"] == "ms"
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"pipeline", "refine"}
        # timestamps are relative to the earliest span start
        assert min(e["ts"] for e in complete) == 0.0
        refine = next(e for e in complete if e["name"] == "refine")
        assert refine["args"] == {"lines": 42}

    @pytest.mark.parametrize(
        "broken",
        [
            [],
            {"traceEvents": "nope"},
            {"traceEvents": [{"ph": "X"}]},
            {"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "ts": 0}]},
            {"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "name": "n"}
            ]},  # complete event without dur
        ],
    )
    def test_validator_rejects_malformed(self, broken):
        with pytest.raises(ValueError):
            validate_chrome_trace(broken)


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", category="x", attr=1)
        with span as inner:
            inner.set("k", "v")
            inner.add("n")
        # the shared no-op span carries no state at all
        assert NULL_TRACER.span("other") is span
        assert not hasattr(span, "attrs")


class TestRefinerIntegration:
    def test_one_span_per_refinement_procedure(self):
        spec = medical_specification()
        spec.validate()
        partition = all_designs(spec)["Design1"]
        tracer = SpanTracer()
        with tracer.span("refine"):
            refined = Refiner(
                spec, partition, resolve_model("Model2"), tracer=tracer
            ).run()
        names = [
            s.name for s in tracer.iter_spans() if s.category == "refine"
        ]
        for procedure in REFINE_PROCEDURES:
            assert procedure in names, f"no span for procedure {procedure}"
        # the wall-clock decomposition mirrors the spans
        assert set(refined.procedure_seconds) == set(REFINE_PROCEDURES)
        assert all(v >= 0.0 for v in refined.procedure_seconds.values())
        assert validate_chrome_trace(tracer.to_chrome_trace()) >= 10

    def test_detached_refiner_records_nothing_but_still_times(self):
        spec = medical_specification()
        spec.validate()
        partition = all_designs(spec)["Design1"]
        refined = Refiner(spec, partition, resolve_model("Model1")).run()
        assert set(refined.procedure_seconds) == set(REFINE_PROCEDURES)
        assert "validate" in refined.procedure_table()
