"""Property-based tests (hypothesis) for the content-addressed cache
key and the cache's eviction bound.

The invariants under test:

* the key is *stable* under specification re-printing — parsing a spec
  from its own canonical text and printing it again never changes the
  key (the printer is a fixpoint);
* the key is *sensitive* to everything that determines a result:
  partition assignment (including its order), model, protocol, seed
  and the code-version salt;
* eviction trims the population to exactly ``capacity`` — never below
  it (the capacity floor).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import ResultCache, canonical_partition, canonical_spec_text, job_key
from repro.fuzz.generator import generate_case
from repro.lang.parser import parse

# spec generation dominates example cost; keep the budget small and
# remove the per-example deadline (CI machines vary wildly)
_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**20)


def _key_for(text, assignment, model="Model4", protocol="handshake", seed=0):
    return job_key(
        "cell",
        {
            "spec": text,
            "partition": assignment,
            "model": model,
            "protocol": protocol,
            "seed": seed,
        },
    )


class TestKeyStability:
    @given(seed=seeds)
    @settings(**_SETTINGS)
    def test_key_invariant_under_reprinting(self, seed):
        case = generate_case(seed)
        text = canonical_spec_text(case.spec)
        # the canonical form is a print fixpoint: text -> parse ->
        # print round-trips to identical bytes, hence identical keys
        assert canonical_spec_text(text) == text
        assert canonical_spec_text(parse(text)) == text
        assignment = canonical_partition(case.partition)
        assert _key_for(text, assignment) == _key_for(
            canonical_spec_text(parse(text)), assignment
        )

    @given(seed=seeds)
    @settings(**_SETTINGS)
    def test_canonical_partition_preserves_order(self, seed):
        case = generate_case(seed)
        pairs = canonical_partition(case.partition)
        assert [name for name, _ in pairs] == list(
            case.partition.assignment
        )


class TestKeySensitivity:
    @given(seed=seeds, other=seeds)
    @settings(**_SETTINGS)
    def test_seed_changes_the_key(self, seed, other):
        case = generate_case(0)
        text = canonical_spec_text(case.spec)
        assignment = canonical_partition(case.partition)
        same = seed == other
        keys_equal = _key_for(text, assignment, seed=seed) == _key_for(
            text, assignment, seed=other
        )
        assert keys_equal == same

    @given(
        model=st.sampled_from(["Model1", "Model2", "Model3", "Model4"]),
        protocol=st.sampled_from(["handshake", "handshake-timeout"]),
    )
    @settings(**_SETTINGS)
    def test_model_and_protocol_change_the_key(self, model, protocol):
        case = generate_case(3)
        text = canonical_spec_text(case.spec)
        assignment = canonical_partition(case.partition)
        base = _key_for(text, assignment, model="Model1", protocol="handshake")
        key = _key_for(text, assignment, model=model, protocol=protocol)
        assert (key == base) == (
            model == "Model1" and protocol == "handshake"
        )

    @given(seed=seeds)
    @settings(**_SETTINGS)
    def test_partition_order_changes_the_key(self, seed):
        """Assignment order steers refinement topology, so a reordered
        partition must key differently even with an equal mapping."""
        case = generate_case(seed)
        text = canonical_spec_text(case.spec)
        pairs = canonical_partition(case.partition)
        if len(pairs) < 2:
            return
        reordered = list(reversed(pairs))
        assert dict(map(tuple, reordered)) == dict(map(tuple, pairs))
        assert _key_for(text, reordered) != _key_for(text, pairs)

    @given(seed=seeds)
    @settings(**_SETTINGS)
    def test_reassignment_changes_the_key(self, seed):
        case = generate_case(seed)
        text = canonical_spec_text(case.spec)
        pairs = canonical_partition(case.partition)
        components = sorted({component for _, component in pairs})
        if len(components) < 2:
            return
        name, component = pairs[0]
        swapped = [[name, next(c for c in components if c != component)]]
        swapped += [list(pair) for pair in pairs[1:]]
        assert _key_for(text, swapped) != _key_for(text, pairs)


class TestEvictionFloor:
    # tempfile instead of the tmp_path fixture: hypothesis reruns the
    # test body per example, but a function-scoped fixture only resets
    # per test, so the directory must be created inside the body

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        puts=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_population_never_drops_below_the_floor(self, capacity, puts):
        import tempfile

        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root, capacity=capacity)
            for i in range(puts):
                cache.put(job_key("t", {"i": i}, salt="s"), "t", {"i": i})
                # eviction trims to exactly `capacity`, never below
                assert len(cache) == min(i + 1, capacity)
            assert len(cache) == min(puts, capacity)
            assert cache.stats.evictions == max(0, puts - capacity)

    @given(extra=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_oldest_entries_are_the_ones_evicted(self, extra):
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root, capacity=3)
            keys = [job_key("t", {"i": i}, salt="s") for i in range(3 + extra)]
            for i, key in enumerate(keys):
                cache.put(key, "t", {"i": i})
                # force a strictly increasing mtime ordering regardless
                # of filesystem timestamp resolution
                os.utime(cache._path(key), ns=(i * 10**9, i * 10**9))
                cache._enforce_capacity()
            assert set(cache.entries()) == set(keys[-3:])
