"""Tests for the architecture layer: components, allocation, bus
signal bundles and the protocol library."""

import pytest

from repro.arch import (
    Allocation,
    BusNet,
    Component,
    ComponentKind,
    HandshakeProtocol,
    MemoryKind,
    MemoryModule,
    MemoryPort,
    Netlist,
    PROTOCOLS,
    StrobeProtocol,
    asic,
    bus_signal_names,
    bus_signals,
    default_allocation_for,
    processor,
    resolve_protocol,
)
from repro.errors import AllocationError, RefinementError
from repro.spec.stmt import SignalAssign, Wait
from repro.spec.subprogram import Direction


class TestComponents:
    def test_processor_constructor(self):
        cpu = processor("P1", cpu="Intel8086", clock_hz=10e6)
        assert cpu.kind is ComponentKind.PROCESSOR
        assert cpu.is_software
        assert cpu.attrs["cpu"] == "Intel8086"

    def test_asic_constructor(self):
        hw = asic("A1", gates=10000, pins=75)
        assert hw.kind is ComponentKind.ASIC
        assert not hw.is_software
        assert hw.attrs == {"gates": 10000, "pins": 75}

    def test_invalid_clock(self):
        with pytest.raises(AllocationError):
            Component("X", ComponentKind.ASIC, 0)

    def test_str_mentions_clock(self):
        assert "10MHz" in str(processor("P"))


class TestAllocation:
    def test_add_and_get(self):
        allocation = Allocation([processor("P"), asic("A")])
        assert allocation.get("P").is_software
        assert len(allocation) == 2

    def test_duplicate_rejected(self):
        with pytest.raises(AllocationError):
            Allocation([processor("P"), asic("P")])

    def test_unknown_lookup(self):
        with pytest.raises(AllocationError):
            Allocation().get("ghost")

    def test_ensure_invents_defaults(self):
        allocation = Allocation().ensure(["PROC_MAIN", "ASIC7", "cpu_b"])
        assert allocation.get("PROC_MAIN").is_software
        assert allocation.get("cpu_b").is_software
        assert not allocation.get("ASIC7").is_software

    def test_ensure_keeps_existing(self):
        base = Allocation([asic("PROC_odd")])  # explicitly an ASIC
        out = base.ensure(["PROC_odd"])
        assert not out.get("PROC_odd").is_software

    def test_default_allocation_for(self):
        allocation = default_allocation_for(["SW1", "HW1"])
        assert allocation.has("SW1") and allocation.has("HW1")

    def test_processors_and_asics_lists(self):
        allocation = Allocation([processor("P"), asic("A"), asic("B")])
        assert len(allocation.processors()) == 1
        assert len(allocation.asics()) == 2


class TestNetlist:
    def test_memory_holding(self):
        netlist = Netlist()
        netlist.add_memory(
            MemoryModule("M", MemoryKind.LOCAL, variables=["x", "y"],
                         ports=[MemoryPort("p1", "b1")])
        )
        assert netlist.memory_holding("x").name == "M"
        with pytest.raises(AllocationError):
            netlist.memory_holding("ghost")

    def test_duplicates_rejected(self):
        netlist = Netlist()
        netlist.add_bus(BusNet("b1", 16, 4))
        with pytest.raises(AllocationError):
            netlist.add_bus(BusNet("b1", 16, 4))

    def test_needs_arbiter(self):
        bus = BusNet("b1", 16, 4, masters=["A", "B"])
        assert bus.needs_arbiter
        assert not BusNet("b2", 16, 4, masters=["A"]).needs_arbiter


class TestBusSignals:
    def test_bundle_names(self):
        names = bus_signal_names("b3")
        assert names["start"] == "b3_start"
        assert names["data"] == "b3_data"
        assert len(names) == 6

    def test_bundle_declarations(self):
        bus = BusNet("b1", data_width=16, addr_width=5)
        bundle = bus_signals(bus)
        by_name = {s.name: s for s in bundle}
        assert by_name["b1_addr"].dtype.bit_width == 5
        assert by_name["b1_data"].dtype.bit_width == 16
        assert all(s.is_signal for s in bundle)
        assert all(s.initial_value == 0 for s in bundle)


class TestProtocols:
    @pytest.mark.parametrize("protocol", [HandshakeProtocol(), StrobeProtocol()])
    def test_four_subroutines(self, protocol):
        bus = BusNet("b1", 16, 4)
        subs = protocol.subprograms(bus)
        names = {s.name for s in subs}
        assert names == {
            "MST_send_b1",
            "MST_receive_b1",
            "SLV_send_b1",
            "SLV_receive_b1",
        }

    def test_master_receive_has_out_param(self):
        bus = BusNet("b1", 16, 4)
        receive = HandshakeProtocol().master_receive(bus)
        assert receive.params[1].direction is Direction.OUT

    def test_handshake_is_four_phase(self):
        """Two waits per transaction: done-high then done-low."""
        bus = BusNet("b1", 16, 4)
        send = HandshakeProtocol().master_send(bus)
        waits = [s for s in send.stmt_body if isinstance(s, Wait)]
        assert len(waits) == 2
        assert all(w.until is not None for w in waits)

    def test_strobe_uses_timed_waits(self):
        bus = BusNet("b1", 16, 4)
        send = StrobeProtocol().master_send(bus)
        waits = [s for s in send.stmt_body if isinstance(s, Wait)]
        assert all(w.delay is not None for w in waits)

    def test_cycles_per_transfer_ordering(self):
        assert (
            StrobeProtocol.cycles_per_transfer
            < HandshakeProtocol.cycles_per_transfer
        )

    def test_registry(self):
        assert resolve_protocol("handshake").name == "handshake"
        hs = HandshakeProtocol()
        assert resolve_protocol(hs) is hs
        with pytest.raises(RefinementError):
            resolve_protocol("carrier-pigeon")
        assert set(PROTOCOLS) >= {"handshake", "strobe"}

    def test_extra_signals_default_empty(self):
        assert HandshakeProtocol().extra_signals(BusNet("b1", 16, 4)) == []

    def test_subroutine_bodies_only_touch_their_bus(self):
        from repro.spec.expr import free_variables
        from repro.spec.visitor import walk_expressions, walk_statements

        bus = BusNet("b7", 16, 4)
        for sub in HandshakeProtocol().subprograms(bus):
            for stmt in walk_statements(sub.stmt_body):
                for expr in stmt.expressions():
                    for name in free_variables(expr):
                        assert name.startswith("b7_") or name in (
                            "addr",
                            "data",
                        )
