"""Tests for the medical bladder-volume system — the paper's evaluation
workload — and its three design partitions."""

import pytest

from repro.apps.medical import (
    MEDICAL_INPUTS,
    all_designs,
    design1_partition,
    design2_partition,
    design3_partition,
)
from repro.experiments.paperdata import PAPER_SPEC_STATS
from repro.graph import classify_variables
from repro.lang.parser import parse
from repro.lang.printer import print_specification
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim import Simulator
from repro.sim.equivalence import check_equivalence
from repro.spec.variable import Role


# the expensive objects are built once per session in tests/conftest.py;
# these aliases keep this module's historical fixture names
@pytest.fixture
def medical(medical_spec):
    return medical_spec


@pytest.fixture
def graph(medical_graph):
    return medical_graph


class TestPaperStatistics:
    """The published §5 statistics of the medical system."""

    def test_sixteen_behaviors(self, medical):
        assert medical.stats().behaviors == PAPER_SPEC_STATS["behaviors"]

    def test_fourteen_variables(self, medical):
        internal = [
            v for v in medical.variables if v.role is Role.INTERNAL
        ]
        assert len(internal) == PAPER_SPEC_STATS["variables"]

    def test_fiftytwo_channels(self, graph):
        assert graph.channel_count() == PAPER_SPEC_STATS["channels"]

    def test_line_count_near_paper(self, medical):
        # paper: 226 lines; our concrete syntax is denser, so allow a band
        assert 180 <= medical.line_count() <= 260


class TestDesignRatios:
    """The local/global variable ratios that define Design1/2/3."""

    def test_design1_equal(self, medical, graph):
        cls = classify_variables(graph, design1_partition(medical))
        assert cls.ratio_label() == "Local = Global"
        assert cls.local_count == cls.global_count == 7

    def test_design2_more_local(self, medical, graph):
        cls = classify_variables(graph, design2_partition(medical))
        assert cls.ratio_label() == "Local > Global"

    def test_design3_more_global(self, medical, graph):
        cls = classify_variables(graph, design3_partition(medical))
        assert cls.ratio_label() == "Local < Global"

    def test_all_designs_are_two_way(self, medical):
        for partition in all_designs(medical).values():
            assert partition.p == 2
            assert set(partition.components()) == {"PROC", "ASIC"}


class TestFunctionalBehaviour:
    def test_default_run_completes(self, medical):
        result = Simulator(medical).run(inputs=MEDICAL_INPUTS)
        assert result.completed
        outputs = result.output_values()
        assert outputs["display_out"] > 0
        assert outputs["log_out"] > 0

    def test_cycles_input_controls_iterations(self, medical):
        one = Simulator(medical).run(
            inputs={"patient_profile": 37, "num_cycles": 1}
        )
        three = Simulator(medical).run(
            inputs={"patient_profile": 37, "num_cycles": 3}
        )
        assert one.value_of("cycle") == 1
        assert three.value_of("cycle") == 3

    def test_alarm_triggers_for_deep_echo(self, medical):
        quiet = Simulator(medical).run(
            inputs={"patient_profile": 12, "num_cycles": 2}
        )
        loud = Simulator(medical).run(
            inputs={"patient_profile": 55, "num_cycles": 2}
        )
        assert quiet.value_of("alarm_out") == 0
        assert loud.value_of("alarm_out") > 0

    def test_outputs_depend_on_profile(self, medical):
        values = {
            Simulator(medical).run(
                inputs={"patient_profile": profile, "num_cycles": 2}
            ).value_of("display_out")
            for profile in (10, 25, 40, 55)
        }
        assert len(values) >= 3  # genuinely input-dependent


class TestTextRoundTrip:
    def test_medical_spec_roundtrips_through_the_language(self, medical):
        # comments (doc strings) are lexed away, so the fixpoint is the
        # second-generation print: parse(print(x)) prints identically
        text = print_specification(medical)
        reparsed = parse(text)
        reparsed.validate()
        stable = print_specification(reparsed)
        assert print_specification(parse(stable)) == stable
        assert reparsed.stats().as_dict() == medical.stats().as_dict()


class TestMedicalRefinementEquivalence:
    """The paper's headline: every (design, model) refinement preserves
    functionality — 12 co-simulations."""

    @pytest.mark.parametrize("design_name", ["Design1", "Design2", "Design3"])
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_refined_is_equivalent(self, medical, design_name, model):
        partition = all_designs(medical)[design_name]
        refined = Refiner(medical, partition, model).run()
        report = check_equivalence(refined, inputs=MEDICAL_INPUTS)
        report.raise_if_mismatched()

    def test_refinement_under_alternate_stimulus(self, medical):
        partition = design1_partition(medical)
        refined = Refiner(medical, partition, ALL_MODELS[3]).run()
        report = check_equivalence(
            refined, inputs={"patient_profile": 55, "num_cycles": 1}
        )
        report.raise_if_mismatched()
