"""Fault tolerance of the execution engine: crashed workers, job
timeouts, corrupted cache entries and stale code-version salts all
degrade to a recompute (or a structured error) — never to a wrong or
silently missing result."""

import json
import multiprocessing
import os
import signal
import time

import pytest

import repro.exec.job as job_module
from repro.exec import (
    ExecutionEngine,
    Job,
    ProcessExecutor,
    ResultCache,
    job_key,
    register,
)


@register("test-faults-echo")
def _echo(params):
    return {"value": params["value"]}


@register("test-faults-boom")
def _boom(params):
    raise ValueError(f"boom {params['value']}")


@register("test-faults-crash")
def _crash(params):
    # only die in worker processes — the guard keeps the serial
    # fallback (which runs in the parent) alive to finish the job
    if multiprocessing.current_process().name != "MainProcess":
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": params["value"], "survived": True}


@register("test-faults-sleep")
def _sleep(params):
    time.sleep(params["seconds"])
    return {"slept": params["seconds"]}


def _echo_jobs(n, task="test-faults-echo"):
    return [Job(task, {"value": i}) for i in range(n)]


class TestTaskErrors:
    def test_raising_task_yields_structured_error(self):
        engine = ExecutionEngine()
        (result,) = engine.run([Job("test-faults-boom", {"value": 3})])
        assert not result.ok
        assert result.error["kind"] == "error"
        assert result.error["type"] == "ValueError"
        assert "boom 3" in result.error["message"]
        assert engine.metrics.failed == 1

    def test_failed_jobs_are_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        engine = ExecutionEngine(cache=cache)
        engine.run([Job("test-faults-boom", {"value": 1})])
        assert cache.entries() == []
        again = ExecutionEngine(cache=ResultCache(str(tmp_path)))
        (result,) = again.run([Job("test-faults-boom", {"value": 1})])
        assert not result.cached and not result.ok

    def test_unknown_task_is_an_error_not_a_crash(self):
        (result,) = ExecutionEngine().run([Job("no-such-task", {})])
        assert not result.ok
        assert result.error["kind"] == "error"
        assert "no-such-task" in result.error["message"]


class TestWorkerCrash:
    def test_graceful_degradation_recomputes_everything(self):
        executor = ProcessExecutor(workers=2, serial_fallback=True)
        engine = ExecutionEngine(executor=executor)
        jobs = [Job("test-faults-crash", {"value": 0})] + _echo_jobs(5)[1:]
        results = engine.run(jobs)
        # every job still produced its result, crash included
        assert all(r.ok for r in results)
        assert results[0].payload["survived"] is True
        assert [r.payload["value"] for r in results] == [0, 1, 2, 3, 4]
        assert executor.degraded >= 1
        assert executor.retries >= 1
        assert engine.metrics.degraded >= 1

    def test_without_fallback_crash_is_reported(self):
        executor = ProcessExecutor(workers=1, serial_fallback=False)
        (result,) = ExecutionEngine(executor=executor).run(
            [Job("test-faults-crash", {"value": 9})]
        )
        assert not result.ok
        assert result.error["kind"] == "crash"


class TestJobTimeout:
    def test_timeout_is_structured_and_rest_complete(self):
        executor = ProcessExecutor(workers=2, timeout=0.5)
        engine = ExecutionEngine(executor=executor)
        jobs = [Job("test-faults-sleep", {"seconds": 30.0})] + _echo_jobs(4)[1:]
        started = time.perf_counter()
        results = engine.run(jobs)
        assert time.perf_counter() - started < 20.0  # never waits the 30s out
        assert not results[0].ok
        assert results[0].error["kind"] == "timeout"
        assert "0.5" in results[0].error["message"]
        assert all(r.ok for r in results[1:])
        assert executor.timeouts == 1
        assert executor.restarts >= 1
        assert engine.metrics.timeouts == 1

    def test_timed_out_job_is_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        engine = ExecutionEngine(
            executor=ProcessExecutor(workers=1, timeout=0.2), cache=cache
        )
        engine.run([Job("test-faults-sleep", {"seconds": 30.0})])
        assert cache.entries() == []


class TestCacheCorruption:
    def _prime(self, tmp_path, value=5):
        cache = ResultCache(str(tmp_path))
        job = Job("test-faults-echo", {"value": value})
        ExecutionEngine(cache=cache).run([job])
        return job, cache._path(job.key())

    def test_truncated_entry_degrades_to_recompute(self, tmp_path):
        job, path = self._prime(tmp_path)
        with open(path, "w") as handle:
            handle.write('{"version": 1, "key"')  # truncated mid-write
        cache = ResultCache(str(tmp_path))
        (result,) = ExecutionEngine(cache=cache).run([job])
        assert result.ok and not result.cached
        assert result.payload == {"value": 5}
        assert cache.stats.errors == 1
        assert not os.path.exists(path) or json.load(open(path))  # repaired

    def test_garbage_entry_degrades_to_recompute(self, tmp_path):
        job, path = self._prime(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xff garbage \xfe")
        cache = ResultCache(str(tmp_path))
        (result,) = ExecutionEngine(cache=cache).run([job])
        assert result.ok and not result.cached
        assert result.payload == {"value": 5}
        assert cache.stats.errors == 1

    def test_mislabelled_entry_is_never_served(self, tmp_path):
        """An entry whose stored key or task disagrees with its address
        is treated as corruption, not as a hit."""
        job, path = self._prime(tmp_path)
        data = json.load(open(path))
        data["task"] = "some-other-task"
        with open(path, "w") as handle:
            json.dump(data, handle)
        cache = ResultCache(str(tmp_path))
        assert cache.get(job.key(), task=job.task) is None
        assert cache.stats.errors == 1


class TestStaleSalt:
    """A code change re-keys every job: old entries can never be served
    against new code."""

    @pytest.fixture(autouse=True)
    def _fake_salt(self, monkeypatch):
        monkeypatch.setitem(job_module._SALT_CACHE, "salt", "salt-v1")

    def test_salt_change_invalidates_entries(self, tmp_path, monkeypatch):
        job = Job("test-faults-echo", {"value": 7})
        cache = ResultCache(str(tmp_path))
        ExecutionEngine(cache=cache).run([job])
        (hit,) = ExecutionEngine(cache=cache).run([job])
        assert hit.cached

        monkeypatch.setitem(job_module._SALT_CACHE, "salt", "salt-v2")
        engine = ExecutionEngine(cache=cache)
        (recomputed,) = engine.run([job])
        assert not recomputed.cached  # the v1 entry was not served
        assert recomputed.payload == {"value": 7}
        assert engine.metrics.cache_misses == 1

        monkeypatch.setitem(job_module._SALT_CACHE, "salt", "salt-v1")
        (old,) = ExecutionEngine(cache=cache).run([job])
        assert old.cached  # the old entry is still valid for old code

    def test_salt_changes_the_key(self):
        params = {"value": 7}
        assert job_key("t", params, "salt-v1") != job_key("t", params, "salt-v2")
