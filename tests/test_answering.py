"""Tests for the answering machine — the control-dominated second
workload (canonical SpecCharts example)."""

import pytest

from repro.apps.answering import (
    TAM_INPUTS,
    answering_machine_specification,
    tam_partition,
)
from repro.graph import AccessGraph, classify_variables
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim import Simulator
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module")
def tam():
    spec = answering_machine_specification()
    spec.validate()
    return spec


class TestFunctionalBehaviour:
    def test_default_run(self, tam):
        result = Simulator(tam).run(inputs=TAM_INPUTS)
        assert result.completed
        outputs = result.output_values()
        assert outputs["light_out"] == 2  # both calls left a message
        assert outputs["play_out"] > 0  # owner code matched: playback ran

    def test_wrong_code_blocks_playback(self, tam):
        inputs = dict(TAM_INPUTS, dialled_code=7)
        result = Simulator(tam).run(inputs=inputs)
        assert result.value_of("play_out") == 0
        # but recording still happened
        assert result.value_of("light_out") == 2

    def test_num_calls_bounds_the_run(self, tam):
        one = Simulator(tam).run(inputs=dict(TAM_INPUTS, num_calls=1))
        three = Simulator(tam).run(inputs=dict(TAM_INPUTS, num_calls=3))
        assert one.value_of("call_no") == 1
        assert three.value_of("call_no") == 3

    def test_line_profile_changes_recordings(self, tam):
        checksums = {
            Simulator(tam).run(
                inputs=dict(TAM_INPUTS, line_profile=profile)
            ).value_of("rec_out")
            for profile in (5, 23, 40)
        }
        assert len(checksums) == 3


class TestPartitionShape:
    def test_balanced_control_vs_audio_split(self, tam):
        graph = AccessGraph.from_specification(tam)
        cls = classify_variables(graph, tam_partition(tam))
        assert cls.ratio_label() == "Local = Global"
        assert "rec_buf" in cls.global_vars  # the audio buffer crosses


class TestRefinementEquivalence:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_all_models_equivalent(self, tam, model):
        refined = Refiner(tam, tam_partition(tam), model).run()
        report = check_equivalence(refined, inputs=TAM_INPUTS)
        report.raise_if_mismatched()

    def test_wrong_code_path_equivalent(self, tam):
        refined = Refiner(tam, tam_partition(tam), ALL_MODELS[3]).run()
        report = check_equivalence(
            refined, inputs=dict(TAM_INPUTS, dialled_code=9)
        )
        report.raise_if_mismatched()


class TestExports:
    def test_c_differential(self, tam, tmp_path):
        import shutil

        if not (shutil.which("gcc") or shutil.which("cc")):
            pytest.skip("no C compiler")
        from test_export_c import compile_and_run, simulate
        from repro.export import export_c

        expected = simulate(tam, inputs=TAM_INPUTS)
        got = compile_and_run(export_c(tam, inputs=TAM_INPUTS), tmp_path)
        assert got == expected

    def test_vhdl_exports(self, tam):
        from repro.export import export_vhdl

        text = export_vhdl(tam)
        assert "entity AnsweringMachine is" in text
        assert "type state_t is" in text
