"""Error-path coverage for the export backends."""

import pytest

from repro.export import CExportError, VhdlExportError, export_c, export_vhdl
from repro.spec.builder import (
    assign,
    conc,
    leaf,
    sassign,
    seq,
    spec,
    transition,
    wait_on,
    wait_until,
)
from repro.spec.expr import var
from repro.spec.types import BIT, int_type
from repro.spec.variable import signal, variable


def _wrap(behavior, variables=(), **kw):
    design = spec("T", behavior, variables=variables, **kw)
    design.validate()
    return design


class TestCExportErrors:
    def test_wait_on_rejected(self):
        design = _wrap(
            leaf("A", wait_on("clk")),
            variables=[signal("clk", BIT)],
        )
        with pytest.raises(CExportError, match="wait on"):
            export_c(design)

    def test_wait_until_on_signal_becomes_spin_loop(self):
        design = _wrap(
            leaf("A", wait_until(var("go").eq(1)), assign("x", 1)),
            variables=[signal("go", BIT), variable("x", int_type())],
        )
        source = export_c(design, standalone=False)
        assert "while (!((go == 1))) { /* spin */ }" in source
        assert "extern volatile" in source

    def test_leaf_declared_signal_rejected(self):
        bad = leaf("A", sassign("s", 1))
        bad.add_decl(signal("s", BIT))
        design = _wrap(bad)
        with pytest.raises(CExportError, match="signal"):
            export_c(design)

    def test_wide_integer_rejected(self):
        design = _wrap(
            leaf("A", assign("big", 1)),
            variables=[variable("big", int_type(80))],
        )
        with pytest.raises(CExportError, match="64"):
            export_c(design)


class TestVhdlExportErrors:
    def test_nested_concurrency_rejected(self):
        inner = conc("Inner", [leaf("X", assign("v", 1)),
                               leaf("Y", assign("w", 1))])
        top = seq(
            "Outer",
            [leaf("Pre", assign("v", 0)), inner],
            transitions=[transition("Pre", None, "Inner")],
        )
        design = _wrap(
            top,
            variables=[variable("v", int_type()), variable("w", int_type())],
        )
        with pytest.raises(VhdlExportError, match="concurrency"):
            export_vhdl(design)
