"""Tests for the four implementation models' topology plans
(paper §3, Figure 3)."""

import pytest

from repro.apps.figures import figure2_partition, figure2_specification
from repro.errors import RefinementError
from repro.graph import AccessGraph, classify_variables
from repro.models import (
    ALL_MODELS,
    MODEL1,
    MODEL2,
    MODEL3,
    MODEL4,
    BusRole,
    resolve_model,
)


@pytest.fixture(scope="module")
def fig2():
    spec = figure2_specification()
    spec.validate()
    partition = figure2_partition(spec)
    return spec, partition


def build(model, fig2):
    spec, partition = fig2
    return model.build_plan(spec, partition)


class TestBusCountFormulas:
    """The paper's maximum-bus formulas for p partitions."""

    @pytest.mark.parametrize(
        "model,expected",
        [(MODEL1, 1), (MODEL2, 3), (MODEL3, 6), (MODEL4, 5)],
    )
    def test_p2(self, model, expected):
        assert model.max_buses(2) == expected

    @pytest.mark.parametrize(
        "model,expected",
        [(MODEL1, 1), (MODEL2, 4), (MODEL3, 12), (MODEL4, 7)],
    )
    def test_p3(self, model, expected):
        assert model.max_buses(3) == expected


class TestModel1Plan:
    def test_single_bus(self, fig2):
        plan = build(MODEL1, fig2)
        assert plan.model_name == "Model1"
        assert list(plan.buses) == ["b1"]
        assert plan.buses["b1"].role is BusRole.GLOBAL

    def test_two_global_memories(self, fig2):
        """Paper §5: 'in Model1 and Model4, two memory modules'."""
        plan = build(MODEL1, fig2)
        assert sorted(plan.memories) == ["Gmem1", "Gmem2"]
        assert all(m.kind == "global" for m in plan.memories.values())

    def test_all_variables_placed(self, fig2):
        spec, partition = fig2
        plan = build(MODEL1, fig2)
        graph = AccessGraph.from_specification(spec)
        assert set(plan.placement) == graph.variable_names

    def test_every_route_is_b1(self, fig2):
        plan = build(MODEL1, fig2)
        assert plan.route("PROC", "v5") == ["b1"]
        assert plan.route("ASIC", "v1") == ["b1"]
        assert plan.route("PROC", "v1") == ["b1"]


class TestModel2Plan:
    def test_paper_bus_layout(self, fig2):
        plan = build(MODEL2, fig2)
        roles = {name: bus.role for name, bus in plan.buses.items()}
        assert roles["b1"] is BusRole.LOCAL
        assert roles["b2"] is BusRole.GLOBAL
        assert roles["b3"] is BusRole.LOCAL
        assert plan.buses["b1"].component == "PROC"
        assert plan.buses["b3"].component == "ASIC"

    def test_four_memories(self, fig2):
        """Paper §5: 'in Model2 and Model3, four memory modules'."""
        plan = build(MODEL2, fig2)
        assert sorted(plan.memories) == ["Gmem1", "Gmem2", "Lmem1", "Lmem2"]

    def test_local_route(self, fig2):
        plan = build(MODEL2, fig2)
        assert plan.route("PROC", "v1") == ["b1"]
        assert plan.route("ASIC", "v6") == ["b3"]

    def test_global_route(self, fig2):
        plan = build(MODEL2, fig2)
        assert plan.route("PROC", "v5") == ["b2"]
        assert plan.route("ASIC", "v4") == ["b2"]
        assert plan.route("PROC", "v4") == ["b2"]  # globals always on b2


class TestModel3Plan:
    def test_paper_bus_layout(self, fig2):
        plan = build(MODEL3, fig2)
        roles = [plan.buses[f"b{i}"].role for i in range(1, 7)]
        assert roles == [
            BusRole.LOCAL,
            BusRole.DEDICATED,
            BusRole.DEDICATED,
            BusRole.DEDICATED,
            BusRole.DEDICATED,
            BusRole.LOCAL,
        ]

    def test_global_memory_ports(self, fig2):
        plan = build(MODEL3, fig2)
        # each global memory has one port per partition
        assert plan.memories["Gmem1"].port_count == 2
        assert plan.memories["Gmem2"].port_count == 2

    def test_dedicated_routing(self, fig2):
        plan = build(MODEL3, fig2)
        # v4 homed PROC -> Gmem1; v5, v7 homed ASIC -> Gmem2
        proc_to_g1 = plan.route("PROC", "v4")
        proc_to_g2 = plan.route("PROC", "v5")
        asic_to_g1 = plan.route("ASIC", "v4")
        asic_to_g2 = plan.route("ASIC", "v7")
        assert proc_to_g1 == ["b2"]
        assert proc_to_g2 == ["b3"]
        assert asic_to_g1 == ["b4"]
        assert asic_to_g2 == ["b5"]

    def test_local_routing(self, fig2):
        plan = build(MODEL3, fig2)
        assert plan.route("PROC", "v2") == ["b1"]
        assert plan.route("ASIC", "v6") == ["b6"]


class TestModel4Plan:
    def test_paper_bus_layout(self, fig2):
        plan = build(MODEL4, fig2)
        roles = [plan.buses[f"b{i}"].role for i in range(1, 6)]
        assert roles == [
            BusRole.LOCAL,
            BusRole.IFACE,
            BusRole.INTERCHANGE,
            BusRole.IFACE,
            BusRole.LOCAL,
        ]

    def test_two_local_memories_dual_ported(self, fig2):
        plan = build(MODEL4, fig2)
        assert sorted(plan.memories) == ["Lmem1", "Lmem2"]
        for memory in plan.memories.values():
            assert memory.port_count == 2  # behaviors port + interface port

    def test_resident_route_uses_local_bus(self, fig2):
        plan = build(MODEL4, fig2)
        assert plan.route("PROC", "v1") == ["b1"]
        assert plan.route("PROC", "v4") == ["b1"]  # global but PROC-resident
        assert plan.route("ASIC", "v5") == ["b5"]

    def test_cross_route_traverses_three_buses(self, fig2):
        """The b2=b3=b4 of the paper: every cross access loads the
        accessor's iface bus, the interchange and the owner's iface."""
        plan = build(MODEL4, fig2)
        assert plan.route("PROC", "v5") == ["b2", "b3", "b4"]
        assert plan.route("ASIC", "v4") == ["b4", "b3", "b2"]

    def test_all_variables_in_home_memory(self, fig2):
        plan = build(MODEL4, fig2)
        assert "v4" in plan.memories["Lmem1"].variables
        assert "v5" in plan.memories["Lmem2"].variables


class TestAddressing:
    def test_addresses_unique_and_contiguous(self, fig2):
        for model in ALL_MODELS:
            plan = build(model, fig2)
            slots = set()
            for name, rng in plan.addresses.items():
                for a in range(rng.base, rng.base + rng.size):
                    assert a not in slots, f"{model.name}: address clash at {a}"
                    slots.add(a)
            assert slots == set(range(len(slots)))

    def test_memory_span_covers_its_variables(self, fig2):
        plan = build(MODEL4, fig2)
        lo, hi = plan.memory_address_span("Lmem1")
        for name in plan.memories["Lmem1"].variables:
            rng = plan.address_of(name)
            assert lo <= rng.base <= rng.last <= hi

    def test_component_span(self, fig2):
        plan = build(MODEL4, fig2)
        lo, hi = plan.component_address_span("PROC")
        assert lo <= plan.address_of("v4").base <= hi
        v5 = plan.address_of("v5")
        assert not (lo <= v5.base <= hi)

    def test_addr_width_covers_space(self, fig2):
        plan = build(MODEL1, fig2)
        space = sum(r.size for r in plan.addresses.values())
        for bus in plan.buses.values():
            assert (1 << bus.addr_width) >= space


class TestResolveModel:
    def test_by_name(self):
        assert resolve_model("Model3") is MODEL3

    def test_passthrough(self):
        assert resolve_model(MODEL2) is MODEL2

    def test_unknown(self):
        with pytest.raises(RefinementError):
            resolve_model("Model9")


class TestDegenerateCases:
    def test_no_globals_model2_has_no_global_bus(self):
        """A partition where every variable is local."""
        from repro.partition import Partition
        from repro.spec.builder import assign, leaf, seq, spec, transition
        from repro.spec.expr import var
        from repro.spec.types import int_type
        from repro.spec.variable import variable

        a = leaf("A", assign("x", var("x") + 1))
        b = leaf("B", assign("y", var("y") + 1))
        top = seq("T", [a, b], transitions=[transition("A", None, "B")])
        design = spec(
            "S",
            top,
            variables=[
                variable("x", int_type(), init=0),
                variable("y", int_type(), init=0),
            ],
        )
        design.validate()
        partition = Partition.from_mapping(
            design, {"A": "P1", "B": "P2", "x": "P1", "y": "P2"}
        )
        plan = MODEL2.build_plan(design, partition)
        assert not plan.buses_with_role(BusRole.GLOBAL)
        assert sorted(plan.memories) == ["Lmem1", "Lmem2"]

        plan4 = MODEL4.build_plan(design, partition)
        assert not plan4.buses_with_role(BusRole.INTERCHANGE)
        assert len(plan4.buses) == 2  # just the two local buses
