"""Drill-down coverage for the rate reports and netlist queries that
the harnesses use but earlier tests only touched indirectly."""

import pytest

from repro.apps.figures import figure2_partition, figure2_specification
from repro.arch import Allocation, asic, processor
from repro.errors import EstimationError
from repro.estimate import (
    bus_transfer_rates,
    channel_rates,
    profile_specification,
    static_profile,
)
from repro.graph import AccessGraph
from repro.models import MODEL2, MODEL3


@pytest.fixture(scope="module")
def setting():
    spec = figure2_specification()
    spec.validate()
    partition = figure2_partition(spec)
    allocation = Allocation([processor("PROC"), asic("ASIC")])
    graph = AccessGraph.from_specification(spec)
    profile = profile_specification(spec, partition, allocation, graph=graph)
    return spec, partition, graph, profile


class TestBusRateReport:
    def test_channels_recorded_for_drilldown(self, setting):
        spec, partition, graph, profile = setting
        plan = MODEL2.build_plan(spec, partition, graph=graph)
        report = bus_transfer_rates(plan, graph, profile)
        assert report.channels
        assert all(c.bits_per_second > 0 for c in report.channels)

    def test_unknown_bus_raises(self, setting):
        spec, partition, graph, profile = setting
        plan = MODEL2.build_plan(spec, partition, graph=graph)
        report = bus_transfer_rates(plan, graph, profile)
        with pytest.raises(EstimationError):
            report.rate_of("b99")

    def test_mbits_helper(self, setting):
        spec, partition, graph, profile = setting
        plan = MODEL2.build_plan(spec, partition, graph=graph)
        report = bus_transfer_rates(plan, graph, profile)
        assert report.mbits("b1") == pytest.approx(report.rate_of("b1") / 1e6)

    def test_describe_lists_every_bus(self, setting):
        spec, partition, graph, profile = setting
        plan = MODEL3.build_plan(spec, partition, graph=graph)
        report = bus_transfer_rates(plan, graph, profile)
        text = report.describe()
        for bus in plan.buses:
            assert bus in text

    def test_channel_rate_repr(self, setting):
        spec, partition, graph, profile = setting
        rate = channel_rates(graph, profile)[0]
        assert "Mbit/s" in repr(rate)


class TestProfileIntrospection:
    def test_describe_mentions_busiest_behavior(self, setting):
        spec, partition, graph, profile = setting
        text = profile.describe(top=3)
        assert "dynamic profile" in text
        assert "us active" in text

    def test_total_accesses(self, setting):
        spec, partition, graph, profile = setting
        assert profile.total_accesses("v4") >= 3  # B1, B2, B3 touch v4

    def test_static_profile_describe(self, setting):
        spec, partition, graph, _ = setting
        static = static_profile(spec, partition, graph=graph)
        assert "static profile" in static.describe()


class TestNetlistQueries:
    def test_bus_of_memory_port(self, setting):
        from repro.refine import Refiner

        spec, partition, graph, _ = setting
        refined = Refiner(spec, partition, MODEL3).run()
        netlist = refined.netlist
        bus = netlist.bus_of_memory_port("Gmem1", 0)
        assert bus.name in refined.plan.memories["Gmem1"].port_buses

    def test_netlist_describe_sections(self, setting):
        from repro.refine import Refiner

        spec, partition, graph, _ = setting
        refined = Refiner(spec, partition, MODEL3).run()
        text = refined.netlist.describe()
        assert "memory" in text
        assert "bus " in text
