"""E8 — Figure 8: bus-interface insertion for message passing.

Regenerates the example where B1 on Component1 reads variable y stored
in Component2's local memory: the access crosses the interface bus, the
interchange, and the owner's interface bus into the memory's second
port — the paper's Bus1/Bus2/Bus3 chain.
"""

import pytest

from repro.apps.figures import figure8_specification
from repro.lang.printer import print_behavior
from repro.models import MODEL4
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module")
def figure8_design():
    spec = figure8_specification()
    spec.validate()
    partition = Partition.from_mapping(
        spec, {"B1": "C1", "B2": "C2", "y": "C2"}
    )
    return Refiner(spec, partition, MODEL4).run()


def bench_regenerate_figure8(benchmark, figure8_design, write_artifact):
    def render():
        parts = [
            "Figure 8: bus interfaces for B1 (on C1) reading y in LM2 (on C2)",
            "",
            "-- outbound interface on C1 (slave on C1's iface bus,",
            "-- master on the interchange):",
            print_behavior(figure8_design.spec.find_behavior("BI_C1_out")),
            "",
            "-- inbound interface on C2 (slave on the interchange,",
            "-- master on C2's iface bus into LM2's second port):",
            print_behavior(figure8_design.spec.find_behavior("BI_C2_in")),
        ]
        return "\n".join(parts)

    write_artifact("figure8_bus_interface.txt", benchmark(render))
    assert "BI_C1_out" in figure8_design.netlist.interfaces
    assert "BI_C2_in" in figure8_design.netlist.interfaces


def bench_figure8_remote_access_simulation(benchmark, figure8_design):
    """Cost of one full remote-read chain under co-simulation."""
    report = benchmark(lambda: check_equivalence(figure8_design))
    assert report.equivalent
