"""E1 — Execution engine: parallel speedup and cache effectiveness.

The workload is the robustness campaign's 3-designs x 4-models medical
grid — twelve independent refine+inject+classify jobs of a few hundred
milliseconds each, the engine's design-center workload.  Three
configurations run back to back:

1. **serial, cold** — the reference executor, no cache;
2. **process, cold** — a 4-worker multiprocessing pool, fresh cache
   (populates it as a side effect);
3. **serial, warm** — the reference executor against the now-warm
   cache (every job must hit).

Gates:

* all three rendered campaign tables are **byte-identical** (results
  are ordered by job identity, never completion order, and the table
  carries no wall-clock);
* the warm-cache run answers **every** job from the cache and is at
  least 2x faster than serial-cold;
* with >= 4 schedulable CPUs the parallel cold run is at least 2x
  faster than serial-cold (>= 1.2x with 2-3 CPUs; on a single CPU the
  ratio is reported but not gated — there is nothing to parallelise
  onto).

Regenerates ``exec_parallel.txt`` / ``exec_parallel.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.exec import ExecutionEngine, ProcessExecutor, ResultCache
from repro.experiments.robustness import run_robustness

WORKERS = 4


def _cpus() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def run_exec_parallel_benchmark() -> dict:
    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        started = time.perf_counter()
        serial = run_robustness(engine=ExecutionEngine())
        serial_seconds = time.perf_counter() - started

        parallel_engine = ExecutionEngine(
            executor=ProcessExecutor(workers=WORKERS),
            cache=ResultCache(cache_root),
        )
        started = time.perf_counter()
        parallel = run_robustness(engine=parallel_engine)
        parallel_seconds = time.perf_counter() - started

        warm_engine = ExecutionEngine(cache=ResultCache(cache_root))
        started = time.perf_counter()
        warm = run_robustness(engine=warm_engine)
        warm_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "cpus": _cpus(),
        "workers": WORKERS,
        "jobs": 12,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "parallel_speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "warm_speedup": serial_seconds / max(warm_seconds, 1e-9),
        "serial_table": serial.render(),
        "parallel_table": parallel.render(),
        "warm_table": warm.render(),
        "parallel_metrics": parallel_engine.metrics.as_dict(),
        "warm_metrics": warm_engine.metrics.as_dict(),
    }


def render_report(data: dict) -> str:
    lines = [
        "Execution engine: robustness 3x4 grid, "
        f"{data['jobs']} jobs, {data['cpus']} CPU(s)",
        "",
        f"  serial cold           {data['serial_seconds']:8.2f} s",
        f"  process cold ({data['workers']} wkr)   "
        f"{data['parallel_seconds']:8.2f} s   "
        f"({data['parallel_speedup']:.2f}x)",
        f"  serial warm cache     {data['warm_seconds']:8.2f} s   "
        f"({data['warm_speedup']:.2f}x)",
        "",
        f"  warm cache hits: {data['warm_metrics']['cache_hits']}/12, "
        f"executed: {data['warm_metrics']['executed']}",
        f"  tables byte-identical: "
        f"{data['serial_table'] == data['parallel_table'] == data['warm_table']}",
    ]
    return "\n".join(lines)


def check_gates(data: dict) -> None:
    assert data["serial_table"] == data["parallel_table"], (
        "serial and parallel campaign tables differ"
    )
    assert data["serial_table"] == data["warm_table"], (
        "serial and warm-cache campaign tables differ"
    )
    warm = data["warm_metrics"]
    assert warm["cache_hits"] == data["jobs"] and warm["executed"] == 0, (
        f"warm run was not hit-only: {warm}"
    )
    assert data["warm_speedup"] >= 2.0, (
        f"warm cache speedup {data['warm_speedup']:.2f}x < 2x"
    )
    parallel = data["parallel_metrics"]
    assert parallel["failed"] == 0 and parallel["degraded"] == 0, (
        f"parallel run was not clean: {parallel}"
    )
    cpus = data["cpus"]
    if cpus >= 4:
        assert data["parallel_speedup"] >= 2.0, (
            f"parallel speedup {data['parallel_speedup']:.2f}x < 2x "
            f"on {cpus} CPUs"
        )
    elif cpus >= 2:
        assert data["parallel_speedup"] >= 1.2, (
            f"parallel speedup {data['parallel_speedup']:.2f}x < 1.2x "
            f"on {cpus} CPUs"
        )
    # single CPU: the ratio is informational only


def bench_exec_parallel(write_artifact):
    data = run_exec_parallel_benchmark()
    report = render_report(data)
    write_artifact("exec_parallel.txt", report)
    payload = {k: v for k, v in data.items() if not k.endswith("_table")}
    write_artifact("exec_parallel.json", json.dumps(payload, indent=2,
                                                    sort_keys=True))
    check_gates(data)


if __name__ == "__main__":
    data = run_exec_parallel_benchmark()
    print(render_report(data))
    check_gates(data)
    raise SystemExit(0)
