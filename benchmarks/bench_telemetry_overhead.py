"""P8 — Telemetry-off overhead on the kernel hot path.

The unified telemetry layer (``repro.obs.metrics`` /
``repro.obs.events``) promises the ``NULL_TRACER`` discipline: an
instrumented call site against a disabled registry or journal costs a
no-op method call on a shared singleton and nothing else.  This bench
keeps that promise honest on the hottest instrumented path we have —
the per-job call sites of :class:`repro.exec.ExecutionEngine`
(outcome counter, latency histogram, journal record, request-ID
binding) layered over the 12-cell refined simulation sweep of
``bench_kernel_hotpath``.

Two interleaved modes, both on the compiled fast path:

* ``plain`` — the sweep with no telemetry code at all;
* ``nulled`` — the same sweep where every cell additionally performs
  the engine's per-job telemetry calls against ``NULL_REGISTRY`` /
  ``NULL_JOURNAL``, the whole sweep wrapped in a ``bind_request_id``
  scope exactly as ``ExecutionEngine.run`` wraps a grid.

Timing uses ``time.process_time`` (CPU seconds) and the overhead is
the *median* of the per-repetition paired ratios — the same estimator
``bench_kernel_hotpath`` uses for its metrics overhead, chosen because
it cancels machine drift that a min-of-N estimator turns into a
phantom gap.

Acceptance ceiling (ISSUE 8): < 3% overhead with telemetry disabled.
Enforced unless ``REPRO_BENCH_INFORMATIONAL=1`` (the paired design is
drift-tolerant, so no CPU-count gate is needed).  Writes
``telemetry_overhead.txt`` and ``telemetry_overhead.json`` under
``benchmarks/output/``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Dict, List

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.models.impl_models import ALL_MODELS
from repro.obs.events import NULL_JOURNAL, bind_request_id
from repro.obs.metrics import NULL_REGISTRY
from repro.refine.refiner import Refiner
from repro.sim.interpreter import Simulator

#: Interleaved repetitions per mode.
REPS = 12

MAX_OVERHEAD = 0.03


def _simulators():
    """One compiled simulator per refined (design, model) cell."""
    spec = medical_specification()
    spec.validate()
    return [
        Simulator(Refiner(spec, partition, model).run().spec)
        for _, partition in sorted(all_designs(spec).items())
        for model in ALL_MODELS
    ]


def _sweep_plain(sims) -> None:
    for simulator in sims:
        simulator.run(inputs=dict(MEDICAL_INPUTS))


def _sweep_nulled(sims) -> None:
    # the engine's family handles are created once per engine; the
    # per-job cost under test is only the no-op calls below
    jobs_total = NULL_REGISTRY.counter(
        "repro_exec_jobs_total", "Jobs.", ("outcome",)
    )
    job_seconds = NULL_REGISTRY.histogram(
        "repro_exec_job_seconds", "Latency."
    )
    with bind_request_id(""):
        NULL_JOURNAL.emit("grid-start", jobs=len(sims))
        for simulator in sims:
            started = time.perf_counter()
            simulator.run(inputs=dict(MEDICAL_INPUTS))
            seconds = time.perf_counter() - started
            jobs_total.labels("ok").inc()
            job_seconds.observe(seconds)
            NULL_JOURNAL.emit("job-complete", outcome="ok", seconds=seconds)
        NULL_JOURNAL.emit("grid-complete", jobs=len(sims))


def run_overhead_benchmark(reps: int = REPS) -> Dict[str, object]:
    sims = _simulators()
    # warm the closure caches and the allocator before timing
    _sweep_plain(sims)
    _sweep_nulled(sims)

    def timed(sweep) -> float:
        started = time.process_time()
        sweep(sims)
        return time.process_time() - started

    plain: List[float] = []
    nulled: List[float] = []
    for _ in range(reps):
        plain.append(timed(_sweep_plain))
        nulled.append(timed(_sweep_nulled))

    overhead = statistics.median(
        n / p - 1.0 for p, n in zip(plain, nulled)
    )
    return {
        "cells": len(sims),
        "reps": reps,
        "plain_cpu_seconds": min(plain),
        "nulled_cpu_seconds": min(nulled),
        "overhead": overhead,
        "enforced": not os.environ.get("REPRO_BENCH_INFORMATIONAL"),
        "samples": {"plain": plain, "nulled": nulled},
    }


def render_report(report: Dict[str, object]) -> str:
    mode = "enforced" if report["enforced"] else "informational"
    return "\n".join(
        [
            "telemetry-off overhead: 12-cell sweep, per-job no-op call "
            f"sites, median paired ratio of {report['reps']} reps ({mode})",
            f"  plain sweep              {report['plain_cpu_seconds']:.3f}s",
            f"  + disabled telemetry     {report['nulled_cpu_seconds']:.3f}s",
            f"  overhead                 {report['overhead']:+.2%} "
            f"(ceiling {MAX_OVERHEAD:.0%})",
        ]
    )


def bench_telemetry_overhead(write_artifact):
    report = run_overhead_benchmark()
    write_artifact("telemetry_overhead.txt", render_report(report))
    write_artifact("telemetry_overhead.json", json.dumps(report, indent=2))
    if report["enforced"]:
        assert report["overhead"] < MAX_OVERHEAD, (
            f"disabled-telemetry overhead {report['overhead']:+.2%} above "
            f"the {MAX_OVERHEAD:.0%} ceiling"
        )


if __name__ == "__main__":
    result = run_overhead_benchmark()
    print(render_report(result))
    raise SystemExit(
        1 if result["enforced"] and result["overhead"] >= MAX_OVERHEAD else 0
    )
