"""A1 — Ablation: partitioner quality vs refinement outcome.

The paper takes SpecSyn's partition as given; this ablation compares
the baseline partitioners on the medical system — cut cost, balance,
and the bus-rate consequences after refinement into Model2 — against
the paper-style hand partitions.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, all_designs
from repro.estimate import bus_transfer_rates, channel_rates, profile_specification
from repro.experiments import default_allocation, render_table
from repro.graph import AccessGraph
from repro.models import MODEL2
from repro.partition import (
    annealed_partition,
    balance_penalty,
    cut_weight,
    greedy_partition,
    kl_partition,
    partition_cost,
)


@pytest.fixture(scope="module")
def graph(medical_spec):
    return AccessGraph.from_specification(medical_spec)


def _candidates(medical_spec, graph):
    components = ("PROC", "ASIC")
    hand = all_designs(medical_spec)
    out = dict(hand)
    out["greedy"] = greedy_partition(medical_spec, components, graph=graph)
    out["kl"] = kl_partition(
        medical_spec, components, graph=graph,
        seed_partition=out["greedy"],
    )
    out["annealed"] = annealed_partition(
        medical_spec, components, graph=graph, steps=1500
    )
    return out


def bench_partitioner_comparison(benchmark, medical_spec, graph, write_artifact):
    candidates = benchmark(lambda: _candidates(medical_spec, graph))
    allocation = default_allocation()
    rows = []
    for name, partition in candidates.items():
        if partition.p < 2:
            rows.append([name, "-", "-", "-", "collapsed to one component"])
            continue
        max_rate = "-"
        try:
            profile = profile_specification(
                medical_spec, partition, allocation,
                inputs=MEDICAL_INPUTS, graph=graph,
            )
            rates = channel_rates(graph, profile)
            plan = MODEL2.build_plan(medical_spec, partition, graph=graph)
            report = bus_transfer_rates(plan, graph, profile, rates=rates)
            max_rate = f"{report.max_rate / 1e6:.0f}"
        except Exception as error:  # degenerate partitions may not plan
            max_rate = f"n/a ({type(error).__name__})"
        rows.append(
            [
                name,
                f"{cut_weight(graph, partition):.0f}",
                f"{balance_penalty(partition):.2f}",
                f"{partition_cost(graph, partition):.3f}",
                max_rate,
            ]
        )
    table = render_table(
        ["partition", "cut weight", "imbalance", "cost", "Model2 max Mbit/s"],
        rows,
        title="Ablation A1: hand partitions vs automatic partitioners "
              "(medical system)",
    )
    write_artifact("ablation_partitioners.txt", table)
    # the automatic partitioners must not be worse than the adversarial
    # hand partition (Design3 was built to maximise globals)
    by_name = {row[0]: row for row in rows}
    assert float(by_name["greedy"][3]) <= float(by_name["Design3"][3])


def bench_greedy_on_medical(benchmark, medical_spec, graph):
    partition = benchmark(
        lambda: greedy_partition(medical_spec, ("PROC", "ASIC"), graph=graph)
    )
    assert partition.name == "greedy"


def bench_annealing_on_medical(benchmark, medical_spec, graph):
    partition = benchmark(
        lambda: annealed_partition(
            medical_spec, ("PROC", "ASIC"), graph=graph, steps=800
        )
    )
    assert partition.name == "annealed"
