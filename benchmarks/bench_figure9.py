"""E1 — Figure 9: bus transfer rates for 3 designs x 4 models.

Regenerates the paper's central table (who wins per design, where the
hot spots are) and benchmarks the full estimation pipeline: profile the
original medical specification under a partition, compute channel
rates, and map them onto each model's bus topology.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, design1_partition
from repro.arch import Allocation
from repro.estimate import bus_transfer_rates, channel_rates, profile_specification
from repro.experiments import default_allocation, run_figure9
from repro.graph import AccessGraph
from repro.models import ALL_MODELS


@pytest.fixture(scope="module")
def figure9_result():
    return run_figure9()


def bench_regenerate_figure9_table(benchmark, figure9_result, write_artifact):
    """Write the regenerated Figure 9 next to the paper's numbers."""
    text = benchmark(figure9_result.render)
    write_artifact("figure9.txt", text)
    # headline shape: Model1's single bus is the system-wide hot spot
    for design in figure9_result.cells:
        m1 = figure9_result.cell(design, "Model1").max_mbits
        m3 = figure9_result.cell(design, "Model3").max_mbits
        assert m3 < m1


def bench_full_figure9_sweep(benchmark):
    """End-to-end cost of regenerating the entire Figure 9 grid."""
    result = benchmark(run_figure9)
    assert len(result.cells) == 3


def bench_single_design_estimation(benchmark, medical_spec):
    """One design's profile + 4 model mappings (the per-design inner
    loop of the sweep)."""
    allocation = default_allocation()
    graph = AccessGraph.from_specification(medical_spec)
    partition = design1_partition(medical_spec)

    def run_one():
        profile = profile_specification(
            medical_spec, partition, allocation,
            inputs=MEDICAL_INPUTS, graph=graph,
        )
        rates = channel_rates(graph, profile)
        return [
            bus_transfer_rates(
                model.build_plan(medical_spec, partition, graph=graph),
                graph, profile, rates=rates,
            )
            for model in ALL_MODELS
        ]

    reports = benchmark(run_one)
    assert len(reports) == 4


def bench_profiling_alone(benchmark, medical_spec):
    """The dynamic profile (instrumented simulation) in isolation."""
    allocation = default_allocation()
    graph = AccessGraph.from_specification(medical_spec)
    partition = design1_partition(medical_spec)
    profile = benchmark(
        profile_specification,
        medical_spec, partition, allocation,
        inputs=MEDICAL_INPUTS, graph=graph,
    )
    assert profile.lifetime("Filter") > 0
