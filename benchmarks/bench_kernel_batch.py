"""P7 — Batched multi-lane simulation: SoA lanes + amortized compilation.

Runs the full production sweep unit for the 3-designs x 4-models
medical grid with ``LANES`` seeds per cell, two ways:

* ``serial`` — the status-quo exec path: one job per (cell, seed),
  each job refining the design and running :func:`check_equivalence`
  with fresh single-lane compiled :class:`Simulator`\\ s (exactly what
  a ``sweep-cell`` task does today);
* ``batched`` — the ``batch-cell`` path: refine once per cell, then
  :func:`check_equivalence_batch` advances all seeds as lanes of one
  :class:`BatchSimulator` pair (original + refined), sharing compiled
  closures across lanes.

Before timing, every lane's outputs, traces, steps and equivalence
verdicts are checked byte-identical to the serial runs — the speedup
only counts if the results are exactly the work the serial path
produces.  Timing uses ``time.process_time`` (CPU seconds) and
interleaves the two modes over ``REPS`` repetitions; the speedup is
min-serial over min-batched.

Acceptance floor (ISSUE 7): >= 3x at >= 8 lanes, enforced on >= 4-CPU
runners; on smaller machines (or with ``REPRO_BENCH_INFORMATIONAL=1``)
the result is reported but not enforced.  Writes ``kernel_batch.txt``
and ``kernel_batch.json`` under ``benchmarks/output/``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.exec.campaigns import sweep_inputs
from repro.models.impl_models import ALL_MODELS
from repro.refine.refiner import Refiner
from repro.sim.equivalence import check_equivalence, check_equivalence_batch

#: Lanes per (design, model) cell-family (the gate's ">= 8 lanes").
LANES = 8

#: Interleaved repetitions per mode; min-of-REPS is reported.
REPS = 5

MIN_SPEEDUP = 3.0


def _cells():
    spec = medical_specification()
    spec.validate()
    return spec, [
        (design_name, model, partition)
        for design_name, partition in all_designs(spec).items()
        for model in ALL_MODELS
    ]


def _vectors(spec) -> List[Dict[str, object]]:
    return [
        sweep_inputs(spec, seed, dict(MEDICAL_INPUTS)) for seed in range(LANES)
    ]


def _report_key(report):
    """Everything a sweep report derives from one equivalence check."""
    refined = report.refined_run
    return (
        report.equivalent,
        tuple(str(m) for m in report.mismatches),
        report.original_run.steps,
        refined.steps,
        refined.completed,
        tuple(sorted(refined.output_values().items())),
        tuple(
            (event.step, event.variable, event.value)
            for event in refined.trace
        ),
    )


def _serial_sweep(spec, cells):
    """One job per (cell, seed): refine + single-lane equivalence."""
    out = []
    for design_name, model, partition in cells:
        for seed in range(LANES):
            design = Refiner(spec, partition, model).run()
            vector = sweep_inputs(design.spec, seed, dict(MEDICAL_INPUTS))
            report = check_equivalence(design, vector)
            out.append((design_name, model.name, seed, _report_key(report)))
    return out


def _batched_sweep(spec, cells):
    """One job per cell-family: refine once, all seeds as lanes."""
    out = []
    for design_name, model, partition in cells:
        design = Refiner(spec, partition, model).run()
        reports = check_equivalence_batch(design, _vectors(design.spec))
        for seed, report in enumerate(reports):
            out.append((design_name, model.name, seed, _report_key(report)))
    return out


def run_batch_benchmark(reps: int = REPS) -> Dict[str, object]:
    """Time the two sweep modes; verify per-lane byte-identity first."""
    spec, cells = _cells()

    # correctness first: every lane byte-identical to its serial run
    # (this also warms allocator/caches for the timed section)
    serial_results = _serial_sweep(spec, cells)
    batched_results = _batched_sweep(spec, cells)
    lanes_identical = serial_results == batched_results

    serial_times: List[float] = []
    batched_times: List[float] = []
    for _ in range(reps):
        started = time.process_time()
        _serial_sweep(spec, cells)
        serial_times.append(time.process_time() - started)
        started = time.process_time()
        _batched_sweep(spec, cells)
        batched_times.append(time.process_time() - started)

    best_serial = min(serial_times)
    best_batched = min(batched_times)
    return {
        "cells": len(cells),
        "lanes": LANES,
        "jobs": len(cells) * LANES,
        "reps": reps,
        "lanes_identical": lanes_identical,
        "serial_cpu_seconds": best_serial,
        "batched_cpu_seconds": best_batched,
        "speedup": best_serial / best_batched,
        "samples": {"serial": serial_times, "batched": batched_times},
    }


def _enforced() -> bool:
    """Gate enforcement: >= 4 CPUs and not explicitly informational."""
    if os.environ.get("REPRO_BENCH_INFORMATIONAL"):
        return False
    return (os.cpu_count() or 1) >= 4


def render_report(report: Dict[str, object]) -> str:
    mode = "enforced" if report["enforced"] else "informational"
    return "\n".join(
        [
            f"batched kernel: {report['cells']} cells x {report['lanes']} "
            f"lanes, min CPU seconds of {report['reps']} interleaved sweeps",
            f"  serial  (job = refine + 1-lane equivalence)  "
            f"{report['serial_cpu_seconds']:.3f}s",
            f"  batched (job = refine + {report['lanes']}-lane batch)      "
            f"{report['batched_cpu_seconds']:.3f}s",
            f"  speedup                  {report['speedup']:.2f}x "
            f"(floor {MIN_SPEEDUP}x, {mode})",
            f"  lanes byte-identical     {report['lanes_identical']}",
        ]
    )


def bench_kernel_batch(write_artifact):
    report = run_batch_benchmark()
    report["enforced"] = _enforced()
    write_artifact("kernel_batch.txt", render_report(report))
    write_artifact("kernel_batch.json", json.dumps(report, indent=2))
    assert report["lanes_identical"], "batched lanes diverged from serial runs"
    if report["enforced"]:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"batched speedup {report['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    result = run_batch_benchmark()
    result["enforced"] = _enforced()
    print(render_report(result))
    ok = result["lanes_identical"] and (
        not result["enforced"] or result["speedup"] >= MIN_SPEEDUP
    )
    raise SystemExit(0 if ok else 1)
