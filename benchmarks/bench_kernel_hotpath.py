"""P1 — Kernel hot path: compile-once closures + sensitivity index.

Simulates the full bladder-volume design space (3 designs x 4
implementation models, refined) three ways:

* ``uncached`` — the reference tree-walking interpreter
  (``compile_cache=False``), which re-dispatches on every AST node;
* ``cached`` — the compiled fast path (the default): statements and
  expressions closed into Python closures once per simulator;
* ``metrics`` — the fast path with a :class:`repro.sim.metrics.SimMetrics`
  attached, measuring the observability overhead.

All three sweeps must produce identical outputs.  Timing uses
``time.process_time`` (CPU seconds — wall clock on shared runners is
far too noisy) and interleaves the three modes over ``REPS``
repetitions.  The speedup is min-uncached over min-cached (the modes
differ by >2x, far above the noise floor); the metrics overhead — a
paired comparison of two nearly identical distributions — is the
*median* of the per-repetition cached-vs-metrics ratios, which cancels
machine drift that a min-of-N estimator turns into a phantom gap.
Simulators are constructed once per mode and re-run, the steady-state
regime the per-simulator closure cache is designed for
(``Simulator.run`` is re-entrant; the cache spans runs).

Acceptance floor (ISSUE 2): >= 2x speedup cached vs uncached, < 10%
overhead with metrics attached.  Writes ``kernel_hotpath.txt`` and
``kernel_hotpath.json`` under ``benchmarks/output/``.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Dict, List, Tuple

from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
from repro.models.impl_models import ALL_MODELS
from repro.refine.refiner import Refiner
from repro.sim.interpreter import Simulator
from repro.sim.metrics import SimMetrics

#: Interleaved repetitions per mode; min-of-REPS is reported.
REPS = 8

MIN_SPEEDUP = 2.0
MAX_OVERHEAD = 0.10


def _refined_designs():
    """The 12 refined (design, model) cells of the medical system."""
    spec = medical_specification()
    spec.validate()
    return [
        (design_name, model.name, Refiner(spec, partition, model).run())
        for design_name, partition in all_designs(spec).items()
        for model in ALL_MODELS
    ]


def _sweep(sims, with_metrics: bool) -> List[Tuple]:
    """Run every cell once; return comparable per-cell outputs."""
    out = []
    for design_name, model_name, simulator, design in sims:
        run = simulator.run(
            inputs=dict(MEDICAL_INPUTS),
            metrics=SimMetrics() if with_metrics else None,
        )
        out.append(
            (
                design_name,
                model_name,
                run.completed,
                run.time,
                tuple(
                    sorted(
                        (port.name, run.value_of(port.name))
                        for port in design.original.outputs()
                    )
                ),
            )
        )
    return out


def run_hotpath_benchmark(reps: int = REPS) -> Dict[str, object]:
    """Time the 12-cell sweep in all three modes; return the report."""
    refined = _refined_designs()
    sims_uncached = [
        (d, m, Simulator(design.spec, compile_cache=False), design)
        for d, m, design in refined
    ]
    sims_cached = [
        (d, m, Simulator(design.spec, compile_cache=True), design)
        for d, m, design in refined
    ]

    # correctness first (also warms both caches and the allocator)
    baseline = _sweep(sims_uncached, False)
    outputs_match = (
        _sweep(sims_cached, False) == baseline
        and _sweep(sims_cached, True) == baseline
    )

    def timed(sims, with_metrics: bool) -> float:
        started = time.process_time()
        _sweep(sims, with_metrics)
        return time.process_time() - started

    uncached: List[float] = []
    cached: List[float] = []
    metered: List[float] = []
    for _ in range(reps):
        uncached.append(timed(sims_uncached, False))
        cached.append(timed(sims_cached, False))
        metered.append(timed(sims_cached, True))

    best_uncached = min(uncached)
    best_cached = min(cached)
    best_metered = min(metered)
    paired_overhead = statistics.median(
        m / c - 1.0 for c, m in zip(cached, metered)
    )
    return {
        "cells": len(refined),
        "reps": reps,
        "outputs_match": outputs_match,
        "uncached_cpu_seconds": best_uncached,
        "cached_cpu_seconds": best_cached,
        "metrics_cpu_seconds": best_metered,
        "speedup": best_uncached / best_cached,
        "metrics_overhead": paired_overhead,
        "samples": {
            "uncached": uncached,
            "cached": cached,
            "metrics": metered,
        },
    }


def render_report(report: Dict[str, object]) -> str:
    lines = [
        "kernel hot path: 3 designs x 4 models, min CPU seconds "
        f"of {report['reps']} interleaved sweeps",
        f"  uncached (tree walker)   {report['uncached_cpu_seconds']:.3f}s",
        f"  cached (closure cache)   {report['cached_cpu_seconds']:.3f}s",
        f"  cached + SimMetrics      {report['metrics_cpu_seconds']:.3f}s",
        f"  speedup                  {report['speedup']:.2f}x (floor {MIN_SPEEDUP}x)",
        f"  metrics overhead         {report['metrics_overhead']:+.1%} "
        f"(ceiling {MAX_OVERHEAD:.0%})",
        f"  outputs identical        {report['outputs_match']}",
    ]
    return "\n".join(lines)


def bench_kernel_hotpath(write_artifact):
    report = run_hotpath_benchmark()
    write_artifact("kernel_hotpath.txt", render_report(report))
    write_artifact("kernel_hotpath.json", json.dumps(report, indent=2))
    assert report["outputs_match"], "cached/uncached outputs diverged"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"speedup {report['speedup']:.2f}x below the {MIN_SPEEDUP}x floor"
    )
    assert report["metrics_overhead"] < MAX_OVERHEAD, (
        f"metrics overhead {report['metrics_overhead']:+.1%} above "
        f"{MAX_OVERHEAD:.0%}"
    )


if __name__ == "__main__":
    result = run_hotpath_benchmark()
    print(render_report(result))
    raise SystemExit(
        0
        if result["outputs_match"]
        and result["speedup"] >= MIN_SPEEDUP
        and result["metrics_overhead"] < MAX_OVERHEAD
        else 1
    )
