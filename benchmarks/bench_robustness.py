"""R1 — Robustness: the fault-injection campaign.

Sweeps the default fault-scenario catalog over the 3 medical designs x
4 implementation models under the timeout-and-retry handshake, checking
that protocol-absorbable faults recover (the refined design stays
functionally equivalent under injection) and unabsorbable faults are
detected.  Regenerates ``robustness_campaign.txt`` — the same table
``repro robustness`` writes, byte-identical for the same seed.
"""

from repro.experiments.robustness import run_robustness


def bench_robustness_campaign(benchmark, write_artifact):
    result = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    table = result.render()
    write_artifact("robustness_campaign.txt", table)
    assert result.unexpected() == []
    for design in sorted(result.cells):
        assert result.recovered_scenarios(design), (
            f"{design}: no recovering fault scenario"
        )
