"""A3 — Ablation: the cost of simulatability.

The paper argues refinement "makes the partitioned specification
simulatable, allowing the designer to verify the system's functional
correctness".  This ablation quantifies that: simulation step counts
and wall cost of the original vs each refined model of the medical
system, i.e. what the communication machinery adds to verification
runs.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, design1_partition
from repro.experiments import render_table
from repro.models import ALL_MODELS
from repro.refine import Refiner
from repro.sim import Simulator


@pytest.fixture(scope="module")
def refined_designs(medical_spec):
    partition = design1_partition(medical_spec)
    return {
        model.name: Refiner(medical_spec, partition, model).run()
        for model in ALL_MODELS
    }


def bench_equivalence_cost_table(benchmark, medical_spec, refined_designs,
                                 write_artifact):
    from repro.sim import Probe

    class _Counter(Probe):
        def __init__(self):
            self.statements = 0

        def on_statement(self, behavior, stmt, cost):
            self.statements += 1

    def run_counted(spec):
        counter = _Counter()
        run = Simulator(spec, probe=counter).run(inputs=MEDICAL_INPUTS)
        return run, counter.statements

    def measure():
        rows = []
        original_run, original_stmts = run_counted(medical_spec)
        rows.append(["original", original_run.steps, original_stmts, "-"])
        for name, design in refined_designs.items():
            run, stmts = run_counted(design.spec)
            rows.append(
                [name, run.steps, stmts, f"{stmts / original_stmts:.1f}x"]
            )
        return rows

    rows = benchmark(measure)
    table = render_table(
        ["model", "scheduler activations", "statements executed",
         "work vs original"],
        rows,
        title="Ablation A3: simulation cost of the refined models "
              "(medical system, Design1)",
    )
    write_artifact("ablation_equivalence_cost.txt", table)
    # the refined models execute strictly more work than the pure
    # functional model — that's the price of interface fidelity
    original_stmts = rows[0][2]
    for row in rows[1:]:
        assert row[2] > original_stmts


@pytest.mark.parametrize("model_name", [m.name for m in ALL_MODELS])
def bench_simulate_refined(benchmark, refined_designs, model_name):
    design = refined_designs[model_name]
    result = benchmark(lambda: Simulator(design.spec).run(inputs=MEDICAL_INPUTS))
    assert result.completed


def bench_simulate_original(benchmark, medical_spec):
    result = benchmark(lambda: Simulator(medical_spec).run(inputs=MEDICAL_INPUTS))
    assert result.completed
