"""Hand-off backends: C and VHDL generation from functional and
refined models.

The paper motivates refinement by the downstream hand-off ("input for
functional verification, behavioral synthesis or software compilation
tools").  These benchmarks measure both backends and regenerate a
size table in *VHDL-level* syntax — the syntax the paper's own
Figure 10 line counts were taken in — alongside our concrete syntax.
"""

import pytest

from repro.apps.medical import all_designs
from repro.experiments import render_table
from repro.export import export_c, export_vhdl
from repro.models import ALL_MODELS
from repro.refine import Refiner


def bench_export_c_medical(benchmark, medical_spec):
    source = benchmark(lambda: export_c(medical_spec))
    assert "int main(void)" in source


def bench_export_vhdl_medical(benchmark, medical_spec):
    source = benchmark(lambda: export_vhdl(medical_spec))
    assert "entity MedicalBVM is" in source


def bench_export_vhdl_refined(benchmark, medical_spec):
    partition = all_designs(medical_spec)["Design1"]
    refined = Refiner(medical_spec, partition, ALL_MODELS[1]).run()
    source = benchmark(lambda: export_vhdl(refined.spec))
    assert "MST_send" in source


def bench_vhdl_size_table(benchmark, medical_spec, write_artifact):
    """Figure 10 companion: refined sizes in VHDL-level syntax."""
    original_vhdl = len(export_vhdl(medical_spec).splitlines())

    def sweep():
        rows = []
        for design_name, partition in all_designs(medical_spec).items():
            cells = [design_name]
            for model in ALL_MODELS:
                refined = Refiner(medical_spec, partition, model).run()
                lines = len(export_vhdl(refined.spec).splitlines())
                cells.append(f"{lines} ({lines / original_vhdl:.1f}x)")
            rows.append(cells)
        return rows

    rows = benchmark(sweep)
    table = render_table(
        ["Design", "Model1", "Model2", "Model3", "Model4"],
        rows,
        title=(
            "Figure 10 companion: refined sizes in generated VHDL "
            f"(original functional model: {original_vhdl} VHDL lines; "
            "the paper measured 226 -> 2630..4324 in VHDL-level syntax)"
        ),
    )
    write_artifact("figure10_vhdl_sizes.txt", table)
    # the same structural claims hold in VHDL syntax
    for row in rows:
        sizes = [int(cell.split()[0]) for cell in row[1:]]
        assert min(sizes) > 3 * original_vhdl
        assert sizes[3] == max(sizes)  # Model4 largest
