"""A2 — Ablation: bus protocol choice.

The paper notes that "generally we can select different protocols to
exchange data; when selecting a different bus protocol, the content in
the subroutines will change correspondingly" (Figure 5d).  This
ablation swaps the four-phase handshake for the two-phase timed strobe
on the same design and compares refined size, simulated transaction
time, and functional equivalence.
"""

import pytest

from repro.apps.medical import MEDICAL_INPUTS, design2_partition
from repro.arch.protocols import PROTOCOLS
from repro.experiments import render_table
from repro.models import MODEL2
from repro.refine import Refiner
from repro.sim import Simulator
from repro.sim.equivalence import check_equivalence


def bench_protocol_comparison(benchmark, medical_spec, write_artifact):
    partition = design2_partition(medical_spec)

    def refine_both():
        return {
            name: Refiner(
                medical_spec, partition, MODEL2, protocol=name
            ).run()
            for name in sorted(PROTOCOLS)
        }

    designs = benchmark(refine_both)
    rows = []
    for name, design in designs.items():
        run = Simulator(design.spec).run(inputs=MEDICAL_INPUTS)
        equivalent = check_equivalence(design, inputs=MEDICAL_INPUTS).equivalent
        rows.append(
            [
                name,
                PROTOCOLS[name].cycles_per_transfer,
                design.spec.line_count(),
                f"{run.time * 1e6:.1f} us",
                run.steps,
                "OK" if equivalent else "MISMATCH",
            ]
        )
    table = render_table(
        ["protocol", "bus cycles/word", "refined lines", "sim time",
         "sim steps", "equivalence"],
        rows,
        title="Ablation A2: handshake vs strobe protocol "
              "(medical system, Design2, Model2)",
    )
    write_artifact("ablation_protocols.txt", table)
    by_name = {row[0]: row for row in rows}
    # both protocols preserve functionality
    assert by_name["handshake"][5] == "OK"
    assert by_name["strobe"][5] == "OK"
    # the strobe burns wall-clock hold time; the handshake is
    # delta-cycle bound
    assert float(by_name["strobe"][3].split()[0]) > float(
        by_name["handshake"][3].split()[0]
    )


def bench_handshake_transaction(benchmark, medical_spec):
    """Simulated cost of the whole refined run under the handshake."""
    partition = design2_partition(medical_spec)
    design = Refiner(medical_spec, partition, MODEL2).run()
    result = benchmark(lambda: Simulator(design.spec).run(inputs=MEDICAL_INPUTS))
    assert result.completed


def bench_strobe_transaction(benchmark, medical_spec):
    """Same run under the timed strobe."""
    partition = design2_partition(medical_spec)
    design = Refiner(
        medical_spec, partition, MODEL2, protocol="strobe"
    ).run()
    result = benchmark(lambda: Simulator(design.spec).run(inputs=MEDICAL_INPUTS))
    assert result.completed
