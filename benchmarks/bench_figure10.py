"""E2/E9 — Figure 10: refined-spec size and refinement CPU time, plus
the productivity-ratio claim.

Regenerates the paper's second table and benchmarks the refiner on the
medical system (the CPU-time column measured properly, via
pytest-benchmark, rather than a single wall-clock sample).
"""

import pytest

from repro.apps.medical import all_designs, design3_partition
from repro.experiments import run_figure10
from repro.models import ALL_MODELS, MODEL1, MODEL4
from repro.refine import Refiner


@pytest.fixture(scope="module")
def figure10_result():
    return run_figure10(check_equivalence=True)


def bench_regenerate_figure10_table(benchmark, figure10_result, write_artifact):
    text = benchmark(figure10_result.render)
    write_artifact("figure10.txt", text)
    # every refined model passed co-simulation against the original
    for row in figure10_result.cells.values():
        for cell in row.values():
            assert cell.equivalent is True
    # the productivity argument: refined specs are several times the input
    assert figure10_result.min_ratio() > 3.0
    # the paper's extreme cell
    largest = max(
        (cell.refined_lines, design, model)
        for design, row in figure10_result.cells.items()
        for model, cell in row.items()
    )
    assert (largest[1], largest[2]) == ("Design3", "Model4")


def bench_refine_model1(benchmark, medical_spec):
    """Refinement CPU time, Model1 (the paper's 37 s column)."""
    partition = all_designs(medical_spec)["Design1"]
    design = benchmark(lambda: Refiner(medical_spec, partition, MODEL1).run())
    assert design.spec.line_count() > 3 * medical_spec.line_count()


def bench_refine_model4_design3(benchmark, medical_spec):
    """Refinement CPU time for the heaviest cell (Design3 x Model4)."""
    partition = design3_partition(medical_spec)
    design = benchmark(lambda: Refiner(medical_spec, partition, MODEL4).run())
    assert design.netlist.interfaces  # message passing machinery exists


def bench_full_figure10_sweep(benchmark):
    """All 12 refinements, without the equivalence co-simulations."""
    result = benchmark(lambda: run_figure10(check_equivalence=False))
    assert len(result.cells) == 3
