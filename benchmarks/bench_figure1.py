"""E3 — Figure 1: the introductory refinement walkthrough.

Regenerates the paper's first example end to end: the A/B/C
specification with variable x, the PROC+ASIC allocation, the Figure 1c
partition, and the refined specification with ``B_CTRL``/``B_NEW`` and
the memory-mapped x — then proves original and refined agree by
co-simulation.
"""

import pytest

from repro.apps.figures import figure1_partition, figure1_specification
from repro.lang.printer import print_specification
from repro.models import MODEL1
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module")
def figure1_design():
    spec = figure1_specification()
    spec.validate()
    return Refiner(spec, figure1_partition(spec), MODEL1).run()


def bench_regenerate_figure1(benchmark, figure1_design, write_artifact):
    text = benchmark(lambda: print_specification(figure1_design.spec))
    write_artifact(
        "figure1_refined.spec",
        "-- Figure 1(d): the refined specification for the chosen\n"
        "-- allocation (PROC + ASIC1) and partition (A,C | B,x)\n" + text,
    )
    assert "B_CTRL" in text
    assert "B_NEW" in text
    assert "MST_receive" in text


def bench_figure1_refinement(benchmark):
    spec = figure1_specification()
    partition = figure1_partition(spec)
    design = benchmark(lambda: Refiner(spec, partition, MODEL1).run())
    assert design.control.moved[0].original == "B"


def bench_figure1_equivalence(benchmark, figure1_design):
    """Co-simulation cost of verifying the walkthrough example."""
    report = benchmark(
        lambda: check_equivalence(figure1_design, inputs={"seed": 3})
    )
    assert report.equivalent
