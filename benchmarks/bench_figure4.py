"""E5 — Figure 4: control-related refinement, both schemes.

Regenerates the leaf scheme (4b) and the wrap scheme (4c) on the paper's
A; B; C example and verifies the execution-order guarantee by
co-simulation.
"""

import pytest

from repro.apps.figures import (
    figure4_nonleaf_specification,
    figure4_specification,
)
from repro.lang.printer import print_behavior
from repro.models import MODEL1
from repro.partition import Partition
from repro.refine import ControlScheme, Refiner
from repro.sim.equivalence import check_equivalence


def _partition(spec):
    return Partition.from_mapping(
        spec, {"A": "P1", "B": "P2", "C": "P1", "acc": "P1"}
    )


def bench_regenerate_figure4(benchmark, write_artifact):
    spec = figure4_specification()
    spec.validate()
    partition = _partition(spec)

    def both_schemes():
        auto = Refiner(spec, partition, MODEL1).run()
        wrap = Refiner(
            spec, partition, MODEL1, control_scheme=ControlScheme.WRAP
        ).run()
        return auto, wrap

    auto, wrap = benchmark(both_schemes)
    lines = ["Figure 4: control-related refinement of B moved to P2", ""]
    lines.append("-- (b) leaf scheme: B_NEW is a guarded server loop")
    lines.append(print_behavior(auto.spec.find_behavior("B_NEW")))
    lines.append("")
    lines.append("-- (c) wrap scheme: [wait-start, B, set-done] loop")
    lines.append(print_behavior(wrap.spec.find_behavior("B_NEW")))
    lines.append("")
    lines.append("-- B_CTRL inserted where B used to sit:")
    lines.append(print_behavior(auto.spec.find_behavior("B_CTRL")))
    write_artifact("figure4_control_refinement.txt", "\n".join(lines))

    assert auto.control.moved[0].scheme == "leaf"
    assert wrap.control.moved[0].scheme == "wrap"
    check_equivalence(auto).raise_if_mismatched()
    check_equivalence(wrap).raise_if_mismatched()


def bench_nonleaf_forces_wrap_scheme(benchmark, write_artifact):
    spec = figure4_nonleaf_specification()
    spec.validate()
    partition = _partition(spec)
    design = benchmark(lambda: Refiner(spec, partition, MODEL1).run())
    assert design.control.moved[0].scheme == "wrap"
    write_artifact(
        "figure4c_nonleaf.txt",
        print_behavior(design.spec.find_behavior("B_NEW")),
    )
    check_equivalence(design).raise_if_mismatched()
