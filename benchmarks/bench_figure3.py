"""E4 — Figures 2 and 3: the four implementation-model topologies.

Regenerates, for the paper's B1-B4 / v1-v7 example, each model's
planned topology (memories, ports, buses) and checks the bus-count
formulas 1, p+1, p+p^2, 2p+1.
"""

import pytest

from repro.apps.figures import figure2_partition, figure2_specification
from repro.models import ALL_MODELS


@pytest.fixture(scope="module")
def fig2():
    spec = figure2_specification()
    spec.validate()
    return spec, figure2_partition(spec)


def bench_regenerate_figure3_topologies(benchmark, fig2, write_artifact):
    spec, partition = fig2

    def build_all():
        return [model.build_plan(spec, partition) for model in ALL_MODELS]

    plans = benchmark(build_all)
    lines = ["Figure 3: planned topologies for the Figure 2 example (p=2)", ""]
    for model, plan in zip(ALL_MODELS, plans):
        lines.append(f"== {model.name}: {model.description} "
                     f"(max buses {model.max_buses(2)}) ==")
        lines.append(plan.describe())
        lines.append("")
    write_artifact("figure3_topologies.txt", "\n".join(lines))

    assert len(plans[0].buses) == 1            # Model1
    assert len(plans[1].buses) <= 3            # Model2: p+1
    assert len(plans[2].buses) <= 6            # Model3: p+p^2
    assert len(plans[3].buses) <= 5            # Model4: 2p+1


def bench_plan_construction_model3(benchmark, fig2):
    """Model3 builds the most buses; measure its planning cost."""
    spec, partition = fig2
    from repro.models import MODEL3

    plan = benchmark(lambda: MODEL3.build_plan(spec, partition))
    assert plan.memories["Gmem1"].port_count == 2
