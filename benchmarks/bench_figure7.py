"""E7 — Figure 7: arbiter insertion for a shared bus.

Regenerates the two-master example (B1 reads x, B2 reads y over one
bus), prints the inserted arbiter behavior, and verifies that the
serialised concurrent accesses still produce the functional model's
results.
"""

import pytest

from repro.apps.figures import figure7_specification
from repro.lang.printer import print_behavior
from repro.models import MODEL1
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module")
def figure7_design():
    spec = figure7_specification()
    spec.validate()
    partition = Partition.from_mapping(
        spec, {"B1": "PROC", "B2": "PROC", "x": "ASIC", "y": "ASIC"}
    )
    return Refiner(spec, partition, MODEL1).run()


def bench_regenerate_figure7(benchmark, figure7_design, write_artifact):
    arbiter_name = next(iter(figure7_design.netlist.arbiters))
    text = benchmark(
        lambda: print_behavior(figure7_design.spec.find_behavior(arbiter_name))
    )
    lines = [
        "Figure 7: arbiter inserted for the shared bus b1",
        "(B1 has priority; B2 is granted only when B1 is not requesting)",
        "",
        text,
    ]
    write_artifact("figure7_arbiter.txt", "\n".join(lines))
    masters = figure7_design.netlist.arbiters[arbiter_name].masters
    assert masters[0] == "B1"  # declaration order = priority


def bench_figure7_contended_simulation(benchmark, figure7_design):
    """Simulate the two concurrent masters through the arbiter."""
    report = benchmark(lambda: check_equivalence(figure7_design))
    assert report.equivalent
