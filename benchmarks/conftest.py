"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's figures or
tables (see DESIGN.md's experiment index) and, where meaningful,
benchmarks the computation behind it with pytest-benchmark.  Rendered
tables are written to ``benchmarks/output/`` so a benchmark run leaves
the full set of regenerated artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

#: Directory the regenerated tables/figures are written into.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def write_artifact(output_dir):
    """Write one regenerated artifact and echo it to the terminal."""

    def write(name: str, text: str) -> None:
        path = output_dir / name
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return write


@pytest.fixture(scope="session")
def medical_spec():
    from repro.apps.medical import medical_specification

    spec = medical_specification()
    spec.validate()
    return spec
