"""E6 — Figures 5 and 6: data-related refinement.

Regenerates the ``x := x + 5`` leaf example (protocol substitution,
memory behavior, handshake subroutines — Figure 5) and the non-leaf
transition-condition example (Figure 6), verifying both by
co-simulation.
"""

import pytest

from repro.apps.figures import figure5_specification, figure6_specification
from repro.lang.printer import print_behavior, print_specification
from repro.models import MODEL1
from repro.partition import Partition
from repro.refine import Refiner
from repro.sim.equivalence import check_equivalence


def bench_regenerate_figure5(benchmark, write_artifact):
    spec = figure5_specification()
    spec.validate()
    partition = Partition.from_mapping(
        spec, {"Driver": "PROC", "B": "PROC", "x": "ASIC"}
    )
    design = benchmark(lambda: Refiner(spec, partition, MODEL1).run())
    refined = design.spec
    lines = [
        "Figure 5: data-related refinement of 'x := x + 5' with x in a memory",
        "",
        "-- (c) behavior B after substitution (tmp + protocol calls):",
        print_behavior(refined.find_behavior("B")),
        "",
        "-- the slave memory behavior serving x:",
        print_behavior(refined.find_behavior(design.observation_map["x"])),
        "",
        "-- (d) the four handshake protocol subroutines:",
    ]
    from repro.lang.printer import print_specification as _ps

    text = _ps(refined)
    in_procs = [
        line for line in text.splitlines() if "procedure" in line
    ]
    lines.extend(in_procs[:8])
    write_artifact("figure5_data_refinement.txt", "\n".join(lines))
    check_equivalence(design, inputs={"seed": 7}).raise_if_mismatched()


def bench_regenerate_figure6(benchmark, write_artifact):
    spec = figure6_specification()
    spec.validate()
    partition = Partition.from_mapping(
        spec, {"B1": "PROC", "B2": "PROC", "B3": "PROC", "x": "ASIC"}
    )
    design = benchmark(lambda: Refiner(spec, partition, MODEL1).run())
    lines = [
        "Figure 6: non-leaf data refinement - the protocols for the",
        "transition conditions x>1 / x>5 are inserted at the end of the",
        "source sub-behaviors, and the conditions read the fetched tmp:",
        "",
        print_behavior(design.spec.find_behavior("B")),
    ]
    write_artifact("figure6_nonleaf_refinement.txt", "\n".join(lines))
    check_equivalence(design).raise_if_mismatched()


def bench_figure5_simulation_cost(benchmark):
    """Steady-state cost of simulating the refined Figure 5 design."""
    from repro.sim import Simulator

    spec = figure5_specification()
    partition = Partition.from_mapping(
        spec, {"Driver": "PROC", "B": "PROC", "x": "ASIC"}
    )
    design = Refiner(spec, partition, MODEL1).run()
    result = benchmark(lambda: Simulator(design.spec).run(inputs={"seed": 7}))
    assert result.completed
