"""E2 — Exploration campaign: quality-cache seeding vs the exhaustive grid.

``repro explore`` searches allocation x partitioner x model x protocol
with a layered strategy: only the quality-cache top-K candidates earn
a KL refinement pass, only Pareto-frontier members are re-annealed,
duplicate design points are never dispatched, and the campaign stops
as soon as a seeded layer stops moving the frontier.  The claim worth
gating is that all of this *narrowing* evaluates strictly fewer cells
than the equivalent exhaustive grid while still producing a
reproducible frontier.

Two configurations run back to back against one cache:

1. **serial, cold** — the default campaign (every allocation, every
   model), populating the cache;
2. **serial, warm** — the same campaign against the warm cache (every
   cell must hit).

Gates:

* ``cells_evaluated`` is **strictly less** than the exhaustive grid
  count recorded in the report (the seeding claim);
* the campaign stopped with a structured reason, never silently;
* cold and warm rendered reports are **byte-identical** and the warm
  run executes nothing;
* the machine-readable report passes ``validate_explore_report``.

Regenerates ``explore_seeding.txt`` / ``explore_seeding.json``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time

from repro.exec import ExecutionEngine, ResultCache
from repro.experiments.explore import run_explore, validate_explore_report


def run_explore_benchmark() -> dict:
    cache_root = tempfile.mkdtemp(prefix="repro-bench-explore-")
    try:
        started = time.perf_counter()
        cold_engine = ExecutionEngine(cache=ResultCache(cache_root))
        cold = run_explore(engine=cold_engine)
        cold_seconds = time.perf_counter() - started

        warm_engine = ExecutionEngine(cache=ResultCache(cache_root))
        started = time.perf_counter()
        warm = run_explore(engine=warm_engine)
        warm_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    report = json.loads(cold.as_json())
    return {
        "cells_evaluated": cold.cells_evaluated,
        "exhaustive_cells": cold.exhaustive_cells,
        "dedup_skipped": cold.dedup_skipped,
        "savings_ratio": cold.exhaustive_cells / max(cold.cells_evaluated, 1),
        "layers_run": cold.layers_run,
        "layers_total": cold.layers_total,
        "stop": cold.stop.as_dict(),
        "frontier_size": len(cold.frontier),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_table": cold.render(),
        "warm_table": warm.render(),
        "report": report,
        "warm_metrics": warm_engine.metrics.as_dict(),
    }


def render_report(data: dict) -> str:
    stop = data["stop"]
    lines = [
        "Exploration: quality-cache seeding vs exhaustive grid",
        "",
        f"  cells evaluated       {data['cells_evaluated']:6d}",
        f"  exhaustive grid       {data['exhaustive_cells']:6d}",
        f"  duplicates skipped    {data['dedup_skipped']:6d}",
        f"  savings               {data['savings_ratio']:6.2f}x fewer cells",
        f"  layers run            {data['layers_run']} of {data['layers_total']}",
        f"  frontier size         {data['frontier_size']:6d}",
        f"  stopped               {stop['reason']} - {stop['detail']}",
        "",
        f"  warm cache hits: {data['warm_metrics']['cache_hits']}, "
        f"executed: {data['warm_metrics']['executed']}",
        f"  reports byte-identical: "
        f"{data['cold_table'] == data['warm_table']}",
        "",
        data["cold_table"],
    ]
    return "\n".join(lines)


def check_gates(data: dict) -> None:
    assert data["cells_evaluated"] < data["exhaustive_cells"], (
        f"seeded search evaluated {data['cells_evaluated']} cells, not "
        f"fewer than the exhaustive grid's {data['exhaustive_cells']}"
    )
    assert data["stop"]["reason"] in (
        "frontier-converged", "cell-budget", "layers-exhausted"
    ), f"unstructured stop: {data['stop']}"
    assert data["frontier_size"] >= 1, "empty Pareto frontier"
    assert data["cold_table"] == data["warm_table"], (
        "cold and warm-cache explore reports differ"
    )
    warm = data["warm_metrics"]
    assert warm["executed"] == 0 and warm["cache_hits"] > 0, (
        f"warm run was not hit-only: {warm}"
    )
    validate_explore_report(data["report"])


def bench_explore(write_artifact):
    data = run_explore_benchmark()
    report = render_report(data)
    write_artifact("explore_seeding.txt", report)
    payload = {k: v for k, v in data.items()
               if k not in ("cold_table", "warm_table", "report")}
    write_artifact("explore_seeding.json", json.dumps(payload, indent=2,
                                                      sort_keys=True))
    check_gates(data)


if __name__ == "__main__":
    data = run_explore_benchmark()
    print(render_report(data))
    check_gates(data)
    raise SystemExit(0)
